"""The complete system ``ESDS-Alg x Users`` (Section 6.4).

``AlgorithmSystem`` composes the well-formed clients, one front end per
client, one replica per replica identifier, and a reliable non-FIFO channel
for every (front end, replica) and (replica, replica) pair.  Every action of
the composition is exposed as a method named after the paper's action
(``request``, ``send_request``, ``receive_request``, ``do_it``,
``send_response``, ``receive_response``, ``response``, ``send_gossip``,
``receive_gossip``), plus a random scheduler that picks among currently
enabled actions — this is the execution harness used by the invariant and
simulation-relation tests.

The class also exposes the derived state variables of Fig. 8:

* ``ops`` — operations done at any replica;
* ``minlabel`` — the system-wide minimum label of each operation;
* ``lc_r`` / ``mc_r(m)`` — local and message constraints;
* ``sc`` — the system constraints agreed by every replica and every
  in-transit gossip message;
* ``po`` — the partial order induced by ``TC(CSC(ops) u sc)`` on ``ops``;
* ``potential_rept`` — response messages in transit towards each client.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.algorithm.channel import Channel
from repro.algorithm.checkpoint import CompactionLedger, CompactionPolicy
from repro.algorithm.frontend import FrontEndCore
from repro.algorithm.labels import Label, LabelOrInfinity, label_min, label_sort_key
from repro.algorithm.messages import GossipMessage, RequestMessage, ResponseMessage
from repro.algorithm.batchcore import core_factory
from repro.algorithm.replica import ReplicaCore
from repro.common import INFINITY, ConfigurationError, OperationId, SpecificationError
from repro.config import UNSET, ReplicaConfig, merge_legacy_config
from repro.core.operations import OperationDescriptor, client_specified_constraints
from repro.core.orders import PartialOrder, induced_order, transitive_closure
from repro.datatypes.base import SerialDataType
from repro.spec.guarantees import TraceRecord
from repro.spec.users import Users

#: Factory signature for building replica cores (lets tests and benchmarks
#: plug in the memoized / commute variants).
ReplicaFactory = Callable[[str, Sequence[str], SerialDataType], ReplicaCore]


class AlgorithmSystem:
    """The flattened composition of Users, front ends, channels and replicas.

    Parameters
    ----------
    data_type:
        The serial data type managed by the service.
    replica_ids:
        Identifiers of the replicas (at least two).
    client_ids:
        Identifiers of the clients (one front end each).
    replica_factory:
        Optional factory to construct replica cores; defaults to
        :class:`~repro.algorithm.replica.ReplicaCore`.
    users:
        Optional pre-built :class:`~repro.spec.users.Users` automaton (e.g. a
        ``SafeUsers`` when using the ``Commute`` replicas).
    delta_gossip:
        When true, ``send_gossip`` transmits destination-specific deltas
        (only knowledge the destination has not acknowledged) instead of the
        replica's full state; see :mod:`repro.algorithm.delta`.  Delta and
        full gossip induce identical executions under the same scheduler.
    full_state_interval:
        Periodic full-state fallback when delta gossip is enabled: every
        that-many sends to a peer carry the full state.
    incremental_replay:
        When true, replicas cache their last response replay and re-apply
        only the changed suffix when computing values (observable values are
        unchanged; only ``stats.value_applications`` drops).
    compaction:
        When given, every replica folds its stable-everywhere prefix into a
        checkpoint under this :class:`CompactionPolicy` and drops the
        per-operation records (see :mod:`repro.algorithm.checkpoint`).
        Responses are unchanged; tracked state becomes proportional to the
        unstable suffix.  The system keeps the agreed compacted prefix in a
        :class:`CompactionLedger` so eventual-order witnesses and invariant
        checks still see the full history.
    advert_gossip:
        When true, gossip carries a compact checkpoint *advert* (frontier,
        digest, id-interval summary) instead of the checkpoint body; a
        replica behind the advertised frontier issues a pull request and the
        advertiser answers with checkpoint-transfer chunks.  Pull and
        transfer messages travel on the gossip channels and are dispatched
        by :meth:`receive_gossip`.  Steady-state payload becomes independent
        of the history length; executions stay response-identical to eager
        shipping.
    checkpoint_chunk:
        With advert gossip, the maximum number of retained values per
        transfer chunk (``None`` = one message per transfer).
    """

    def __init__(
        self,
        data_type: SerialDataType,
        replica_ids: Sequence[str],
        client_ids: Sequence[str],
        replica_factory: Optional[ReplicaFactory] = None,
        users: Optional[Users] = None,
        delta_gossip: bool = UNSET,
        full_state_interval: int = UNSET,
        incremental_replay: bool = UNSET,
        compaction: Optional[CompactionPolicy] = UNSET,
        advert_gossip: bool = UNSET,
        checkpoint_chunk: Optional[int] = UNSET,
        fast_core: bool = UNSET,
        batch_replay: bool = UNSET,
        config: Optional[ReplicaConfig] = None,
    ) -> None:
        if len(set(replica_ids)) < 2:
            raise ConfigurationError("the algorithm assumes at least two replicas")
        if not client_ids:
            raise ConfigurationError("at least one client is required")
        self.config = merge_legacy_config(
            config,
            dict(
                delta_gossip=delta_gossip,
                full_state_interval=full_state_interval,
                incremental_replay=incremental_replay,
                compaction=compaction,
                advert_gossip=advert_gossip,
                checkpoint_chunk=checkpoint_chunk,
                fast_core=fast_core,
                batch_replay=batch_replay,
            ),
            "AlgorithmSystem",
        )
        self.config.require_single_policy("AlgorithmSystem")
        self.data_type = data_type
        self.replica_ids: Tuple[str, ...] = tuple(replica_ids)
        self.client_ids: Tuple[str, ...] = tuple(client_ids)

        factory = replica_factory or core_factory(self.config)
        self.users = users if users is not None else Users()
        self.frontends: Dict[str, FrontEndCore] = {
            c: FrontEndCore(c, self.replica_ids) for c in self.client_ids
        }
        self.replicas: Dict[str, ReplicaCore] = {
            r: factory(r, self.replica_ids, data_type) for r in self.replica_ids
        }
        #: The system-wide compacted stable prefix, tiled (and cross-checked)
        #: from every replica's compaction reports.
        self.compaction_ledger = CompactionLedger()
        for core in self.replicas.values():
            self.config.configure_core(core)
            core.on_compact = self.compaction_ledger.record

        self.request_channels: Dict[Tuple[str, str], Channel[RequestMessage]] = {
            (c, r): Channel(c, r) for c in self.client_ids for r in self.replica_ids
        }
        self.response_channels: Dict[Tuple[str, str], Channel[ResponseMessage]] = {
            (r, c): Channel(r, c) for r in self.replica_ids for c in self.client_ids
        }
        self.gossip_channels: Dict[Tuple[str, str], Channel[GossipMessage]] = {
            (a, b): Channel(a, b)
            for a in self.replica_ids
            for b in self.replica_ids
            if a != b
        }

        #: External trace (request/response events) for the guarantee checks.
        self.trace = TraceRecord()

    # ====================================================================== #
    # External and internal actions                                          #
    # ====================================================================== #

    def request(self, operation: OperationDescriptor) -> None:
        """``request(x)`` — client issues an operation (checked for
        well-formedness by the Users automaton)."""
        self.users.assert_well_formed(operation)
        self.users.requested.add(operation)
        self.frontends[operation.id.client].request(operation)
        self.trace.record_request(operation)

    def ensure_client(self, client_id: str) -> None:
        """Admit a client identity after construction (resharding: migrated
        operations keep the composite ``client@shard`` identity their source
        shard minted them under, so the destination system hosts a front end
        for that foreign identity too).  Idempotent."""
        if client_id in self.frontends:
            return
        self.client_ids = self.client_ids + (client_id,)
        self.frontends[client_id] = FrontEndCore(client_id, self.replica_ids)
        for replica in self.replica_ids:
            self.request_channels[(client_id, replica)] = Channel(client_id, replica)
            self.response_channels[(replica, client_id)] = Channel(replica, client_id)

    def send_request(self, client: str, replica: str, operation: OperationDescriptor) -> None:
        """``send_cr(("request", x))`` — front end relays a pending request."""
        message = self.frontends[client].make_request_message(operation)
        self.request_channels[(client, replica)].send(message)

    def receive_request(
        self, client: str, replica: str, message: Optional[RequestMessage] = None,
        rng: Optional[random.Random] = None,
    ) -> RequestMessage:
        """``receive_cr(("request", x))`` — deliver one request message.

        A retransmit the replica can provably never answer (compacted, value
        evicted) triggers an immediate stale-response NACK onto the response
        channel instead of a silent drop."""
        delivered = self.request_channels[(client, replica)].receive(message, rng)
        core = self.replicas[replica]
        core.receive_request(delivered)
        for operation in core.take_stale_nacks():
            self.response_channels[(replica, operation.id.client)].send(
                ResponseMessage(operation=operation, value=None, stale=True, sender=replica)
            )
        return delivered

    def do_it(self, replica: str, operation: OperationDescriptor, label: Optional[Label] = None) -> Label:
        """``do_it_r(x, l)``."""
        return self.replicas[replica].do_it(operation, label)

    def send_response(self, replica: str, operation: OperationDescriptor) -> ResponseMessage:
        """``send_rc(("response", x, v))``."""
        message = self.replicas[replica].make_response(operation)
        client = operation.id.client
        self.response_channels[(replica, client)].send(message)
        return message

    def receive_response(
        self, replica: str, client: str, message: Optional[ResponseMessage] = None,
        rng: Optional[random.Random] = None,
    ) -> ResponseMessage:
        """``receive_rc(("response", x, v))``."""
        delivered = self.response_channels[(replica, client)].receive(message, rng)
        self.frontends[client].receive_response(delivered)
        return delivered

    def response(self, operation: OperationDescriptor) -> Any:
        """``response(x, v)`` — front end answers the client."""
        client = operation.id.client
        value = self.frontends[client].respond(operation)
        self.users.responded[operation.id] = value
        self.trace.record_response(operation, value)
        return value

    def send_gossip(self, source: str, destination: str) -> GossipMessage:
        """``send_rr'(("gossip", ...))`` — a full-state message by default, or
        a destination-specific delta when the source replica has delta gossip
        enabled."""
        if source == destination:
            raise SpecificationError("a replica does not gossip with itself")
        message = self.replicas[source].make_gossip(destination)
        self.gossip_channels[(source, destination)].send(message)
        return message

    def receive_gossip(
        self, source: str, destination: str, message: Optional[GossipMessage] = None,
        rng: Optional[random.Random] = None,
    ) -> GossipMessage:
        """``receive_r'r(("gossip", ...))`` — also dispatches the advert/pull
        protocol's pull-request and checkpoint-transfer messages, which share
        the gossip channels.  Receiving a gossip message whose advert shows
        this replica behind enqueues a pull; receiving a pull enqueues the
        transfer chunks back toward the requester."""
        delivered = self.gossip_channels[(source, destination)].receive(message, rng)
        replica = self.replicas[destination]
        if delivered.kind == "pull":
            for transfer in replica.receive_pull_request(delivered):
                self.gossip_channels[(destination, transfer.requester)].send(transfer)
        elif delivered.kind == "transfer":
            replica.receive_transfer(delivered)
        else:
            replica.receive_gossip(delivered)
            for pull in replica.take_pending_pulls():
                self.gossip_channels[(destination, pull.target)].send(pull)
        return delivered

    # ====================================================================== #
    # Derived variables (Fig. 8)                                             #
    # ====================================================================== #

    def ops(self) -> Set[OperationDescriptor]:
        """``ops = U_r done_r[r]`` — operations done at any replica.

        Operations folded into a compaction checkpoint remain done (their
        records just moved into the base state), so the compacted prefix is
        included from the ledger.
        """
        result: Set[OperationDescriptor] = set(self.compaction_ledger.prefix)
        for replica in self.replicas.values():
            result |= replica.done_here()
        return result

    def compacted_ops(self, replica: str) -> List[OperationDescriptor]:
        """The operations replica *r* has folded into its checkpoint, in the
        agreed label order (reconstructed from the ledger — the replica
        itself keeps only the compact id summary)."""
        return self.compaction_ledger.prefix[: self.replicas[replica].checkpoint.count]

    def minlabel(self, op_id: OperationId) -> LabelOrInfinity:
        """``minlabel(id)`` — the system-wide minimum label."""
        best: LabelOrInfinity = INFINITY
        for replica in self.replicas.values():
            best = label_min(best, replica.label_of(op_id))
        return best

    def eventual_order(self) -> List[OperationId]:
        """The identifiers of ``ops`` sorted by system-wide minimum label.

        Once gossip has quiesced this is the eventual total order used as the
        witness for Theorem 5.8 checks.  The compacted prefix comes first, in
        the order the replicas folded it (its minimum labels may no longer be
        held anywhere — that is the point of compaction); every tracked
        operation sorts after it, because a replica only compacts a prefix
        whose labels every remaining label exceeds.
        """
        compacted_ids = self.compaction_ledger.ids
        suffix = [
            x.id
            for x in sorted(
                (x for x in self.ops() if x.id not in compacted_ids),
                key=lambda op: label_sort_key(self.minlabel(op.id)),
            )
        ]
        return [x.id for x in self.compaction_ledger.prefix] + suffix

    def local_constraints(self, replica: str) -> Set[Tuple[OperationId, OperationId]]:
        """``lc_r`` restricted to the identifiers of ``ops``.

        The paper defines ``lc_r`` over all identifiers; pairs whose second
        component has no label at ``r`` (label ``oo``) are included whenever
        the first component is labelled, which is why the computation ranges
        over the ``ops`` universe rather than only the labels ``r`` holds.

        An identifier compacted at ``r`` has no tracked label either, but for
        the opposite reason: its archived label sat at or below the frontier,
        beneath every label ``r`` still tracks.  Compacted identifiers are
        therefore ordered among themselves by their (frozen) ledger position
        and before every other identifier.
        """
        universe = {x.id for x in self.ops()}
        core = self.replicas[replica]
        return self._constraints_with_prefix(replica, universe, core.label_of)

    def _compacted_positions(self, replica: str) -> Dict[OperationId, int]:
        """Ledger position of each identifier *replica* has compacted."""
        count = self.replicas[replica].checkpoint.count
        return {x.id: index for index, x in enumerate(self.compaction_ledger.prefix[:count])}

    def _constraints_with_prefix(
        self,
        replica: str,
        universe: Set[OperationId],
        label_of: Callable[[OperationId], LabelOrInfinity],
        position: Optional[Dict[OperationId, int]] = None,
    ) -> Set[Tuple[OperationId, OperationId]]:
        """The label-induced constraints over *universe* as seen at
        *replica*, with its compacted identifiers ordered among themselves
        by their frozen ledger position and before every other identifier —
        the shared core of ``lc_r`` and ``mc_r(m)``.  *position* overrides
        the replica's own compacted-prefix positions (used for transfer
        messages, whose adoption would extend the covered prefix)."""
        if position is None:
            position = self._compacted_positions(replica)
        constraints: Set[Tuple[OperationId, OperationId]] = set()
        for a in universe:
            pos_a = position.get(a)
            if pos_a is not None:
                for b in universe:
                    if a == b:
                        continue
                    pos_b = position.get(b)
                    if pos_b is None or pos_a < pos_b:
                        constraints.add((a, b))
                continue
            label_a = label_of(a)
            if label_a is INFINITY:
                continue
            for b in universe:
                if a != b and b not in position and label_a < label_of(b):
                    constraints.add((a, b))
        return constraints

    def message_constraints(
        self, replica: str, message
    ) -> Set[Tuple[OperationId, OperationId]]:
        """``mc_r(m)`` — the local constraints replica *r* would have if it
        received *message* immediately (restricted to the ``ops`` universe).

        Identifiers compacted at *r* keep their frozen prefix order (the
        receiver ignores gossiped labels for them), exactly as in
        :meth:`local_constraints`.

        Advert/pull messages are handled by what receiving them actually
        does: a *pull* conveys no knowledge (``mc_r`` is just ``lc_r``); a
        *transfer* extends the receiver's covered prefix to the transferred
        checkpoint (its identifiers adopt their frozen ledger positions); a
        gossip message carrying an **advert** contributes only its label
        payload — the advert becomes knowledge only after the pull
        completes, so it adds nothing here.
        """
        core = self.replicas[replica]
        universe = {x.id for x in self.ops()}
        if message.kind == "pull":
            return self.local_constraints(replica)
        if message.kind == "transfer":
            count = max(core.checkpoint.count, message.ids.count)
            position = {
                x.id: index
                for index, x in enumerate(self.compaction_ledger.prefix[:count])
            }
            return self._constraints_with_prefix(
                replica,
                universe,
                lambda op_id: core.label_of(op_id),
                position=position,
            )
        checkpoint = core.checkpoint
        merged: Dict[OperationId, LabelOrInfinity] = {
            op_id: label_min(core.label_of(op_id), message.label_of(op_id))
            for op_id in universe
            if not checkpoint.covers(op_id)
        }
        return self._constraints_with_prefix(
            replica, universe, lambda op_id: merged.get(op_id, INFINITY)
        )

    def in_transit_gossip(self, destination: Optional[str] = None) -> List[Tuple[str, GossipMessage]]:
        """Gossip messages currently in transit (optionally only those headed
        to *destination*), with their destination replica."""
        messages: List[Tuple[str, GossipMessage]] = []
        for (src, dst), channel in self.gossip_channels.items():
            if destination is not None and dst != destination:
                continue
            for message in channel.contents():
                messages.append((dst, message))
        return messages

    def system_constraints(self) -> Set[Tuple[OperationId, OperationId]]:
        """``sc = (⋂_r lc_r) ⋂ (⋂_r ⋂_{m -> r} mc_r(m))``."""
        op_ids = {x.id for x in self.ops()}
        if not op_ids:
            return set()
        candidate_pairs = {
            (a, b) for a in op_ids for b in op_ids if a != b
        }
        agreed = set(candidate_pairs)
        for replica_id in self.replica_ids:
            agreed &= self.local_constraints(replica_id)
            if not agreed:
                return set()
        for destination, message in self.in_transit_gossip():
            if message.kind == "pull":
                continue  # conveys no knowledge; mc would be exactly lc
            agreed &= self.message_constraints(destination, message)
            if not agreed:
                return set()
        return agreed

    def partial_order(self) -> PartialOrder:
        """``po`` — the relation induced by ``TC(CSC(ops) u sc)`` on ``ops``."""
        operations = self.ops()
        op_ids = {x.id for x in operations}
        raw = set(client_specified_constraints(operations)) | self.system_constraints()
        closure = transitive_closure(raw)
        return PartialOrder(induced_order(closure, op_ids))

    def potential_rept(self, client: str) -> Set[Tuple[OperationDescriptor, Any]]:
        """``potential_rept_c`` — responses en route to *client* for
        operations still waiting.  Stale-response NACKs carry no value and
        can never be recorded in ``rept``, so they are not potential
        responses."""
        frontend = self.frontends[client]
        result: Set[Tuple[OperationDescriptor, Any]] = set()
        for (replica, dest), channel in self.response_channels.items():
            if dest != client:
                continue
            for message in channel.contents():
                if message.operation in frontend.wait and not message.stale:
                    result.add((message.operation, message.value))
        return result

    def stable_everywhere(self) -> Set[OperationDescriptor]:
        """``⋂_r stable_r[r]`` — the operations every replica knows stable,
        on the checkpoint + suffix view: an operation a replica has folded
        into its checkpoint is stable there by construction (compaction only
        ever folds stable-everywhere operations), so stability is never
        *lost* by compacting — which the forward-simulation relation against
        the spec's monotone ``stabilized`` set depends on."""
        stable_sets = [
            replica.stable_here() | set(self.compacted_ops(rid))
            for rid, replica in self.replicas.items()
        ]
        return set.intersection(*stable_sets) if stable_sets else set()

    # ====================================================================== #
    # Scheduling                                                             #
    # ====================================================================== #

    def enabled_actions(self) -> List[Tuple[str, Tuple]]:
        """Every currently enabled non-input action, as ``(kind, args)``
        descriptors usable with :meth:`perform`."""
        actions: List[Tuple[str, Tuple]] = []
        for client, frontend in self.frontends.items():
            for operation in sorted(frontend.wait, key=lambda op: repr(op.id)):
                for replica in self.replica_ids:
                    actions.append(("send_request", (client, replica, operation)))
            for operation, _value in frontend.response_candidates():
                actions.append(("response", (operation,)))
        for (client, replica), channel in self.request_channels.items():
            for message in channel.contents():
                actions.append(("receive_request", (client, replica, message)))
        for (replica, client), channel in self.response_channels.items():
            for message in channel.contents():
                actions.append(("receive_response", (replica, client, message)))
        for (src, dst), channel in self.gossip_channels.items():
            actions.append(("send_gossip", (src, dst)))
            for message in channel.contents():
                actions.append(("receive_gossip", (src, dst, message)))
        for replica_id, replica in self.replicas.items():
            for operation in replica.doable_operations():
                actions.append(("do_it", (replica_id, operation)))
            for operation in replica.ready_responses():
                actions.append(("send_response", (replica_id, operation)))
        return actions

    def perform(self, kind: str, args: Tuple) -> Any:
        """Execute one action descriptor produced by :meth:`enabled_actions`."""
        handler = getattr(self, kind)
        return handler(*args)

    def random_step(self, rng: random.Random, gossip_bias: float = 0.2) -> Optional[Tuple[str, Tuple]]:
        """Perform one randomly chosen enabled action.

        ``send_gossip`` is always enabled, which would swamp the choice; it is
        therefore selected with probability *gossip_bias* and otherwise
        excluded when other work is available.
        """
        actions = self.enabled_actions()
        if not actions:
            return None
        non_gossip = [a for a in actions if a[0] != "send_gossip"]
        if non_gossip and rng.random() > gossip_bias:
            choice = rng.choice(non_gossip)
        else:
            choice = rng.choice(actions)
        self.perform(*choice)
        return choice

    def run_random(self, rng: random.Random, steps: int,
                   step_hook: Optional[Callable[["AlgorithmSystem", Tuple[str, Tuple]], None]] = None) -> int:
        """Run up to *steps* random steps, invoking *step_hook* after each.

        Returns the number of steps actually performed.
        """
        performed = 0
        for _ in range(steps):
            choice = self.random_step(rng)
            if choice is None:
                break
            performed += 1
            if step_hook is not None:
                step_hook(self, choice)
        return performed

    def drain(self, rng: random.Random, max_steps: int = 100000, gossip_rounds: int = 3) -> None:
        """Deliver all traffic and run a few full gossip rounds so that every
        operation becomes stable everywhere (used by tests to reach the
        eventual total order)."""
        for _ in range(gossip_rounds):
            # Relay requests still parked at a front end: ``send_request`` is a
            # separate action from ``request`` and may not have fired yet for
            # recently submitted operations.  Replicas treat retransmits
            # idempotently, so blanket re-sends are safe.
            for client, frontend in self.frontends.items():
                for operation in sorted(frontend.wait, key=lambda op: repr(op.id)):
                    for replica in self.replica_ids:
                        self.send_request(client, replica, operation)
            self._deliver_everything(rng)
            for src in self.replica_ids:
                for dst in self.replica_ids:
                    if src != dst:
                        self.send_gossip(src, dst)
            self._deliver_everything(rng)

    def _deliver_everything(self, rng: random.Random) -> None:
        progressing = True
        steps = 0
        while progressing and steps < 100000:
            progressing = False
            steps += 1
            for action in self.enabled_actions():
                kind = action[0]
                if kind in ("receive_request", "receive_response", "receive_gossip",
                            "do_it", "send_response", "response"):
                    self.perform(*action)
                    progressing = True
                    break

    # ====================================================================== #
    # Snapshots                                                              #
    # ====================================================================== #

    def snapshot(self) -> Dict[str, Any]:
        """A structural snapshot used by the simulation-relation harness."""
        return {
            "requested": set(self.users.requested),
            "frontends": {c: fe.snapshot() for c, fe in self.frontends.items()},
            "replicas": {r: rep.snapshot() for r, rep in self.replicas.items()},
            "request_channels": {
                key: channel.contents() for key, channel in self.request_channels.items()
            },
            "response_channels": {
                key: channel.contents() for key, channel in self.response_channels.items()
            },
            "gossip_channels": {
                key: channel.contents() for key, channel in self.gossip_channels.items()
            },
        }
