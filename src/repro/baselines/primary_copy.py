"""Primary-copy replication with synchronous (write-all) propagation.

An atomic replicated object in the style of [1, 23, 26] of the paper: every
operation is forwarded to the primary, which orders it, applies it, pushes
the update synchronously to every backup and waits for their acknowledgements
before answering the client.  Reads could be served by backups in more
refined variants; here every operation goes through the primary so the
service is linearizable, at the cost of two extra message delays and a
throughput ceiling at the primary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.common import OperationId
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import SerialDataType
from repro.sim.cluster import SimulationParams
from repro.baselines.base import BaselineServiceBase


class PrimaryCopyService(BaselineServiceBase):
    """Primary orders and applies; backups acknowledge before the response."""

    def __init__(
        self,
        data_type: SerialDataType,
        num_replicas: int = 3,
        client_ids: Sequence[str] = ("c0",),
        params: Optional[SimulationParams] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(data_type, client_ids, params, seed)
        if num_replicas < 1:
            raise ValueError("at least one replica (the primary) is required")
        self.num_replicas = num_replicas
        self.replica_ids = tuple(f"r{i}" for i in range(num_replicas))
        self._primary_state = data_type.initial_state()
        self._backup_states: Dict[str, Any] = {
            rid: data_type.initial_state() for rid in self.replica_ids[1:]
        }
        self._busy_until = 0.0
        self._pending_acks: Dict[OperationId, int] = {}
        self._pending_values: Dict[OperationId, Any] = {}
        self.applied_order: List[OperationDescriptor] = []

    # -- request path -------------------------------------------------------------

    def _dispatch(self, operation: OperationDescriptor) -> None:
        self.network.record_sent("request")
        delay = self.network.delay_for("request", self.simulator.now)
        self.simulator.schedule(delay, lambda: self._arrive_at_primary(operation))

    def _arrive_at_primary(self, operation: OperationDescriptor) -> None:
        start = max(self.simulator.now, self._busy_until)
        finish = start + self.params.service_time
        self._busy_until = finish
        if finish <= self.simulator.now:
            self._apply_at_primary(operation)
        else:
            self.simulator.schedule_at(finish, lambda: self._apply_at_primary(operation))

    def _apply_at_primary(self, operation: OperationDescriptor) -> None:
        self._primary_state, value = self.data_type.apply(self._primary_state, operation.op)
        self.applied_order.append(operation)
        backups = self.replica_ids[1:]
        if not backups:
            self._complete(operation, value)
            return
        self._pending_acks[operation.id] = len(backups)
        self._pending_values[operation.id] = value
        for backup in backups:
            self.network.record_sent("gossip")
            delay = self.network.delay_for("gossip", self.simulator.now)
            self.simulator.schedule(
                delay, lambda b=backup, op=operation: self._apply_at_backup(b, op)
            )

    def _apply_at_backup(self, backup: str, operation: OperationDescriptor) -> None:
        state, _ = self.data_type.apply(self._backup_states[backup], operation.op)
        self._backup_states[backup] = state
        # Acknowledgement travels back to the primary.
        self.network.record_sent("gossip")
        delay = self.network.delay_for("gossip", self.simulator.now)
        self.simulator.schedule(delay, lambda op=operation: self._ack(op))

    def _ack(self, operation: OperationDescriptor) -> None:
        remaining = self._pending_acks.get(operation.id)
        if remaining is None:
            return
        remaining -= 1
        if remaining > 0:
            self._pending_acks[operation.id] = remaining
            return
        del self._pending_acks[operation.id]
        value = self._pending_values.pop(operation.id)
        self._complete(operation, value)

    # -- inspection ---------------------------------------------------------------

    def serialization(self) -> List[OperationDescriptor]:
        """The primary's application order (the object's linearization)."""
        return list(self.applied_order)

    def replica_states(self) -> Dict[str, Any]:
        """Primary and backup states (for convergence checks)."""
        states = {"r0": self._primary_state}
        states.update(self._backup_states)
        return states
