"""Centralized atomic object — the non-replicated baseline of Section 1.1.

A single server holds the only copy of the data, processes requests in
arrival order with a per-operation service time, and answers each client.
Every response is trivially consistent with a single total order (the
processing order), i.e. the object is atomic, but throughput is capped by the
one server and every request pays the full round trip to it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.operations import OperationDescriptor
from repro.datatypes.base import SerialDataType
from repro.sim.cluster import SimulationParams
from repro.baselines.base import BaselineServiceBase


class CentralizedAtomicService(BaselineServiceBase):
    """One server, one copy, FIFO processing."""

    def __init__(
        self,
        data_type: SerialDataType,
        client_ids: Sequence[str],
        params: Optional[SimulationParams] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(data_type, client_ids, params, seed)
        self._state = data_type.initial_state()
        self._busy_until = 0.0
        #: The serialization actually applied, for the atomicity tests.
        self.applied_order: List[OperationDescriptor] = []

    def _dispatch(self, operation: OperationDescriptor) -> None:
        self.network.record_sent("request")
        delay = self.network.delay_for("request", self.simulator.now)
        self.simulator.schedule(delay, lambda: self._arrive(operation))

    def _arrive(self, operation: OperationDescriptor) -> None:
        start = max(self.simulator.now, self._busy_until)
        finish = start + self.params.service_time
        self._busy_until = finish
        if finish <= self.simulator.now:
            self._process(operation)
        else:
            self.simulator.schedule_at(finish, lambda: self._process(operation))

    def _process(self, operation: OperationDescriptor) -> None:
        self._state, value = self.data_type.apply(self._state, operation.op)
        self.applied_order.append(operation)
        self._complete(operation, value)

    # -- inspection ---------------------------------------------------------------

    def current_state(self) -> Any:
        """The server's current data state."""
        return self._state

    def serialization(self) -> List[OperationDescriptor]:
        """The total order in which operations were applied."""
        return list(self.applied_order)
