"""Lazy replication with multipart timestamps, after Ladin, Liskov, Shrira
and Ghemawat (1992) — the algorithm ESDS generalizes (Section 1.2).

This baseline reproduces the shape of the original scheme rather than every
engineering detail:

* operations are split into **updates** (write-only) and **queries**
  (read-only), as the original requires;
* every replica keeps a **multipart timestamp** (one component per replica,
  i.e. a vector clock) ``rep_ts`` describing the updates it has applied, and
  a log of update records;
* a client (front end) presents a dependency timestamp ``prev_ts`` with each
  request; the replica may serve it only once its ``rep_ts`` dominates the
  dependency (causal consistency);
* an **update** is accepted by one replica, which assigns it the next value
  of its own timestamp component, merges it into its log and returns the new
  timestamp to the client; updates reach other replicas by periodic gossip of
  the log;
* **forced** updates are totally ordered with respect to each other by being
  routed through a fixed sequencer replica (a simplification of the original
  primary-commit scheme);
* queries return the value computed from the replica's applied prefix.

The important contrast with ESDS (exercised in benchmark E7 and in the unit
tests) is that ordering classes are attached to *operator kinds* at system
configuration time — the application developer decides which updates are
forced — whereas ESDS lets each request choose ``strict`` at run time, and
ESDS supports arbitrary read-modify-write operators rather than pure
updates/queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common import OperationId
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import Operator, SerialDataType
from repro.sim.cluster import SimulationParams
from repro.baselines.base import BaselineServiceBase


@dataclass(frozen=True)
class MultipartTimestamp:
    """A vector timestamp with one non-negative component per replica."""

    components: Tuple[int, ...]

    @classmethod
    def zero(cls, size: int) -> "MultipartTimestamp":
        return cls(tuple(0 for _ in range(size)))

    def merge(self, other: "MultipartTimestamp") -> "MultipartTimestamp":
        return MultipartTimestamp(
            tuple(max(a, b) for a, b in zip(self.components, other.components))
        )

    def dominates(self, other: "MultipartTimestamp") -> bool:
        return all(a >= b for a, b in zip(self.components, other.components))

    def bump(self, index: int) -> "MultipartTimestamp":
        components = list(self.components)
        components[index] += 1
        return MultipartTimestamp(tuple(components))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "<" + ",".join(map(str, self.components)) + ">"


@dataclass
class UpdateRecord:
    """A log entry describing one accepted update."""

    operation: OperationDescriptor
    timestamp: MultipartTimestamp
    dependency: MultipartTimestamp
    origin: int
    forced_seqno: Optional[int] = None


class _LadinReplica:
    """One replica of the lazy-replication service."""

    def __init__(self, index: int, num_replicas: int, data_type: SerialDataType) -> None:
        self.index = index
        self.data_type = data_type
        self.rep_ts = MultipartTimestamp.zero(num_replicas)
        self.val_ts = MultipartTimestamp.zero(num_replicas)
        self.value = data_type.initial_state()
        self.log: List[UpdateRecord] = []
        self.applied: Set[OperationId] = set()
        self.next_forced_applied = 0

    def accept_update(
        self,
        operation: OperationDescriptor,
        dependency: MultipartTimestamp,
        forced_seqno: Optional[int],
    ) -> UpdateRecord:
        self.rep_ts = self.rep_ts.bump(self.index)
        record = UpdateRecord(
            operation=operation,
            timestamp=dependency.merge(self.rep_ts),
            dependency=dependency,
            origin=self.index,
            forced_seqno=forced_seqno,
        )
        self.log.append(record)
        self.apply_ready()
        return record

    def merge_log(self, records: Iterable[UpdateRecord]) -> None:
        known = {record.operation.id for record in self.log}
        for record in records:
            if record.operation.id not in known:
                self.log.append(record)
                known.add(record.operation.id)
                self.rep_ts = self.rep_ts.merge(record.timestamp)
        self.apply_ready()

    def apply_ready(self) -> None:
        """Apply logged updates whose dependencies are satisfied, in timestamp
        order (forced updates additionally wait for their sequence turn)."""
        progressing = True
        while progressing:
            progressing = False
            pending = [r for r in self.log if r.operation.id not in self.applied]
            pending.sort(key=lambda r: (sum(r.timestamp.components), r.timestamp.components))
            for record in pending:
                if not self.val_ts.dominates(record.dependency):
                    continue
                if record.forced_seqno is not None and record.forced_seqno != self.next_forced_applied:
                    continue
                self.value, _ = self.data_type.apply(self.value, record.operation.op)
                self.val_ts = self.val_ts.merge(record.timestamp)
                self.applied.add(record.operation.id)
                if record.forced_seqno is not None:
                    self.next_forced_applied += 1
                progressing = True

    def can_answer(self, dependency: MultipartTimestamp) -> bool:
        return self.val_ts.dominates(dependency)

    def query_value(self, operation: OperationDescriptor) -> Any:
        _, value = self.data_type.apply(self.value, operation.op)
        return value


class LadinLazyReplicationService(BaselineServiceBase):
    """The lazy-replication baseline service.

    ``forced_operators`` names the operator kinds that must be totally
    ordered (chosen by the "application developer"); everything else that is
    not read-only is a causal update.
    """

    def __init__(
        self,
        data_type: SerialDataType,
        num_replicas: int = 3,
        client_ids: Sequence[str] = ("c0",),
        params: Optional[SimulationParams] = None,
        forced_operators: Iterable[str] = (),
        seed: int = 0,
    ) -> None:
        super().__init__(data_type, client_ids, params, seed)
        if num_replicas < 2:
            raise ValueError("lazy replication needs at least two replicas")
        self.num_replicas = num_replicas
        self.forced_operators = frozenset(forced_operators)
        self.replicas = [_LadinReplica(i, num_replicas, data_type) for i in range(num_replicas)]
        #: Per-client dependency timestamps (what the client has observed).
        self.client_ts: Dict[str, MultipartTimestamp] = {
            c: MultipartTimestamp.zero(num_replicas) for c in self.client_ids
        }
        self._forced_counter = 0
        self._sequencer_index = 0
        self._rr = 0
        self._retry_queue: List[Tuple[OperationDescriptor, int]] = []

    # -- lifecycle ------------------------------------------------------------------

    def _on_start(self) -> None:
        self.simulator.schedule(self.params.gossip_period, self._gossip_tick)

    def _gossip_tick(self) -> None:
        for source in self.replicas:
            for destination in self.replicas:
                if source.index == destination.index:
                    continue
                records = list(source.log)
                self.network.record_sent("gossip", payload_size=len(records))
                delay = self.network.delay_for("gossip", self.simulator.now)
                self.simulator.schedule(
                    delay, lambda d=destination, r=records: self._deliver_gossip(d, r)
                )
        self.simulator.schedule(self.params.gossip_period, self._gossip_tick)

    def _deliver_gossip(self, destination: _LadinReplica, records: List[UpdateRecord]) -> None:
        destination.merge_log(records)
        self._retry_pending()

    # -- request handling --------------------------------------------------------------

    def _classify(self, operator: Operator) -> str:
        if self.data_type.is_read_only(operator):
            return "query"
        if operator.name in self.forced_operators:
            return "forced"
        return "causal"

    def _pick_replica(self, kind: str) -> int:
        if kind == "forced":
            return self._sequencer_index
        index = self._rr % self.num_replicas
        self._rr += 1
        return index

    def _dispatch(self, operation: OperationDescriptor) -> None:
        kind = self._classify(operation.op)
        replica_index = self._pick_replica(kind)
        self.network.record_sent("request")
        delay = self.network.delay_for("request", self.simulator.now)
        self.simulator.schedule(delay, lambda: self._arrive(operation, replica_index))

    def _arrive(self, operation: OperationDescriptor, replica_index: int) -> None:
        kind = self._classify(operation.op)
        replica = self.replicas[replica_index]
        client = operation.id.client
        dependency = self.client_ts[client]

        if kind == "query":
            if replica.can_answer(dependency):
                value = replica.query_value(operation)
                self._complete(operation, value)
            else:
                self._retry_queue.append((operation, replica_index))
            return

        forced_seqno = None
        if kind == "forced":
            forced_seqno = self._forced_counter
            self._forced_counter += 1
        record = replica.accept_update(operation, dependency, forced_seqno)
        self.client_ts[client] = self.client_ts[client].merge(record.timestamp)
        # The update's "value" is its timestamp acknowledgement; to stay
        # comparable with ESDS we report the operator's reported value at the
        # accepting replica once applied, or the timestamp if still pending.
        if operation.id in replica.applied:
            value = replica.query_value(operation) if self.data_type.is_read_only(operation.op) else record.timestamp
        else:
            value = record.timestamp
        self._complete(operation, value)
        self._retry_pending()

    def _retry_pending(self) -> None:
        still_waiting: List[Tuple[OperationDescriptor, int]] = []
        for operation, replica_index in self._retry_queue:
            replica = self.replicas[replica_index]
            dependency = self.client_ts[operation.id.client]
            if replica.can_answer(dependency):
                value = replica.query_value(operation)
                self._complete(operation, value)
            else:
                still_waiting.append((operation, replica_index))
        self._retry_queue = still_waiting

    # -- inspection ------------------------------------------------------------------

    def replica_values(self) -> List[Any]:
        """The applied value at each replica (for convergence tests)."""
        return [replica.value for replica in self.replicas]

    def converged(self) -> bool:
        """Have all replicas applied the same set of updates?"""
        applied_sets = [replica.applied for replica in self.replicas]
        return all(s == applied_sets[0] for s in applied_sets)
