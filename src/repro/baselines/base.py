"""Shared plumbing for the baseline services.

Every baseline is a small discrete-event service with the same client-facing
surface as :class:`~repro.sim.cluster.SimulatedCluster`: clients ``submit``
operation descriptors (the ``strict`` flag and ``prev`` sets are accepted for
interface compatibility even where the baseline's consistency model makes
them redundant), messages take ``df`` / ``dg`` time, servers have a
per-operation service time, and completed operations are recorded in a
:class:`~repro.sim.metrics.MetricsCollector`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.common import ConfigurationError, OperationId, OperationIdGenerator
from repro.core.operations import OperationDescriptor, make_operation
from repro.datatypes.base import Operator, SerialDataType
from repro.sim.cluster import SimulationParams
from repro.sim.events import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkModel, SimulatedNetwork
from repro.spec.guarantees import TraceRecord


class BaselineServiceBase:
    """Common client plumbing for the baseline services."""

    def __init__(
        self,
        data_type: SerialDataType,
        client_ids: Sequence[str],
        params: Optional[SimulationParams] = None,
        seed: int = 0,
    ) -> None:
        if not client_ids:
            raise ConfigurationError("at least one client is required")
        self.data_type = data_type
        self.params = params or SimulationParams()
        self.rng = random.Random(seed)
        self.simulator = Simulator()
        self.network = SimulatedNetwork(
            NetworkModel(
                df=self.params.df,
                dg=self.params.dg,
                jitter=self.params.jitter,
                loss_probability=self.params.loss_probability,
            ),
            self.rng,
        )
        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.id_generators: Dict[str, OperationIdGenerator] = {
            c: OperationIdGenerator(c) for c in self.client_ids
        }
        self.metrics = MetricsCollector()
        self.trace = TraceRecord()
        self.requested: Dict[OperationId, OperationDescriptor] = {}
        self.responded: Dict[OperationId, Any] = {}
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.metrics.started_at = self.simulator.now
        self._on_start()

    def _on_start(self) -> None:
        """Hook for subclasses (e.g. to start background propagation timers)."""

    @property
    def now(self) -> float:
        return self.simulator.now

    def run(self, duration: float, max_events: Optional[int] = None) -> None:
        self.start()
        self.simulator.run_until(self.simulator.now + duration, max_events)
        self.metrics.finished_at = self.simulator.now

    def run_until_idle(self, max_time: float = 10_000.0, max_events: int = 5_000_000) -> None:
        self.start()
        deadline = self.simulator.now + max_time
        events = 0
        while self.outstanding_operations() and self.simulator.now < deadline:
            if not self.simulator.step():
                break
            events += 1
            if events >= max_events:
                break
        self.metrics.finished_at = self.simulator.now

    def outstanding_operations(self) -> int:
        return len(set(self.requested) - set(self.responded))

    # -- client interface ----------------------------------------------------------

    def make_operation(
        self,
        client: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
    ) -> OperationDescriptor:
        self.data_type.check_operator(operator)
        return make_operation(operator, self.id_generators[client].fresh(), frozenset(prev), strict)

    def submit(
        self,
        client: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
        at: Optional[float] = None,
    ) -> OperationDescriptor:
        self.start()
        operation = self.make_operation(client, operator, prev, strict)
        self.requested[operation.id] = operation
        when = self.simulator.now if at is None else at
        self.simulator.schedule_at(when, lambda op=operation: self._client_request(op))
        return operation

    def execute(
        self,
        client: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
        max_time: float = 10_000.0,
    ) -> Tuple[OperationDescriptor, Any]:
        operation = self.submit(client, operator, prev, strict)
        deadline = self.simulator.now + max_time
        while operation.id not in self.responded and self.simulator.now < deadline:
            if not self.simulator.step():
                break
        if operation.id not in self.responded:
            raise RuntimeError(f"operation {operation.id} received no response")
        return operation, self.responded[operation.id]

    # -- shared internals -------------------------------------------------------------

    def _client_request(self, operation: OperationDescriptor) -> None:
        self.metrics.record_request(operation, self.simulator.now)
        self.trace.record_request(operation)
        self._dispatch(operation)

    def _dispatch(self, operation: OperationDescriptor) -> None:
        """Subclasses route the request into the service."""
        raise NotImplementedError

    def _complete(self, operation: OperationDescriptor, value: Any) -> None:
        """Deliver the response back to the client after a ``df`` delay."""
        self.network.record_sent("response")
        delay = self.network.delay_for("response", self.simulator.now)
        self.simulator.schedule(delay, lambda: self._deliver_response(operation, value))

    def _deliver_response(self, operation: OperationDescriptor, value: Any) -> None:
        if operation.id in self.responded:
            return
        self.responded[operation.id] = value
        self.metrics.record_response(operation, value, self.simulator.now)
        self.trace.record_response(operation, value)
