"""Baseline data services the paper compares against (conceptually).

The paper motivates ESDS against two ends of the consistency spectrum
(Section 1.1) and builds directly on Ladin et al.'s lazy replication
(Section 1.2).  The benchmarks therefore need concrete baselines:

* :class:`~repro.baselines.atomic.CentralizedAtomicService` — a single
  non-replicated server processing operations in arrival order (the
  "simplest implementation" of Section 1.1);
* :class:`~repro.baselines.primary_copy.PrimaryCopyService` — an atomic
  replicated object using primary copy with synchronous (write-all)
  propagation before answering;
* :class:`~repro.baselines.lazy_ladin.LadinLazyReplicationService` — a
  rendering of Ladin, Liskov, Shrira and Ghemawat's lazy replication with
  multipart (vector) timestamps, supporting causal and forced operations.

All baselines expose the same duck-typed interface as
:class:`~repro.sim.cluster.SimulatedCluster` (``submit`` / ``execute`` /
``run`` / ``run_until_idle`` / ``metrics``), so the same workloads drive every
system in benchmark E7.
"""

from repro.baselines.atomic import CentralizedAtomicService
from repro.baselines.primary_copy import PrimaryCopyService
from repro.baselines.lazy_ladin import LadinLazyReplicationService, MultipartTimestamp

__all__ = [
    "CentralizedAtomicService",
    "PrimaryCopyService",
    "LadinLazyReplicationService",
    "MultipartTimestamp",
]
