"""Distributed object / type repository on top of ESDS (Section 11.2).

The second application the paper sketches: the information repositories of
coarse-grained distributed object frameworks (CORBA-style) — a distributed
type system plus a module implementation repository used for dynamic
dispatch.  Access is query-dominated; registrations propagate lazily; the
binding used for dispatch can be requested strictly when a caller needs the
authoritative answer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common import OperationId
from repro.datatypes.directory import DirectoryType


class ObjectRepository:
    """Type and implementation repository facade over an ESDS deployment.

    Types are directory entries named ``type:<name>``; implementations are
    entries named ``impl:<type>/<module>``.  Interface definitions and
    dispatch bindings are attributes of those entries.
    """

    def __init__(self, cluster, client: str) -> None:
        self.cluster = cluster
        self.client = client
        self._entry_ops: Dict[str, OperationId] = {}

    # -- type system ---------------------------------------------------------------

    def register_type(self, type_name: str, interface: Dict[str, str]) -> bool:
        """Register a type with its interface (method name -> signature)."""
        key = f"type:{type_name}"
        operation, created = self.cluster.execute(self.client, DirectoryType.create(key))
        self._entry_ops[key] = operation.id
        for method, signature in interface.items():
            self._set(key, f"method:{method}", signature)
        return bool(created)

    def add_method(self, type_name: str, method: str, signature: str) -> bool:
        """Add a method to an existing type's interface."""
        return self._set(f"type:{type_name}", f"method:{method}", signature)

    def interface_of(self, type_name: str, consistent: bool = False) -> Optional[Dict[str, str]]:
        """The interface of a type (``None`` if unknown)."""
        entry = self._lookup(f"type:{type_name}", consistent)
        if entry is None:
            return None
        return {
            key[len("method:"):]: value
            for key, value in entry.items()
            if key.startswith("method:")
        }

    # -- implementation repository ----------------------------------------------------

    def register_implementation(
        self, type_name: str, module: str, location: str, version: str = "1"
    ) -> bool:
        """Register a module implementing a type, with its dispatch location."""
        key = f"impl:{type_name}/{module}"
        operation, created = self.cluster.execute(
            self.client,
            DirectoryType.create(key),
            prev=self._deps(f"type:{type_name}"),
        )
        self._entry_ops[key] = operation.id
        self._set(key, "location", location)
        self._set(key, "version", version)
        return bool(created)

    def dispatch(self, type_name: str, module: str, consistent: bool = False) -> Optional[str]:
        """The location to dispatch invocations of ``type_name`` to, through
        *module* (``None`` when unknown)."""
        entry = self._lookup(f"impl:{type_name}/{module}", consistent)
        if entry is None:
            return None
        return entry.get("location")

    def implementations_of(self, type_name: str, consistent: bool = False) -> List[str]:
        """Modules registered as implementing *type_name*."""
        _operation, names = self.cluster.execute(
            self.client, DirectoryType.list_names(), strict=consistent
        )
        prefix = f"impl:{type_name}/"
        return [name[len(prefix):] for name in names if name.startswith(prefix)]

    # -- helpers ------------------------------------------------------------------------

    def _deps(self, key: str) -> Tuple[OperationId, ...]:
        op_id = self._entry_ops.get(key)
        return (op_id,) if op_id is not None else ()

    def _set(self, key: str, attr: str, value: Any) -> bool:
        _operation, result = self.cluster.execute(
            self.client, DirectoryType.set_attr(key, attr, value), prev=self._deps(key)
        )
        return result is True

    def _lookup(self, key: str, consistent: bool) -> Optional[Dict[str, Any]]:
        _operation, result = self.cluster.execute(
            self.client, DirectoryType.lookup(key), prev=self._deps(key), strict=consistent
        )
        if result is None:
            return None
        return dict(result)
