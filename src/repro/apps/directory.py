"""Distributed directory / name service on top of ESDS (Section 11.2).

Directory services (Grapevine, DECdns, DCE CDS/GDS, X.500, DNS) are the
paper's motivating application: lookups dominate, updates may propagate
lazily, yet a consistent view must eventually be established and occasionally
an update must take effect "expediently".  This wrapper encodes the paper's
recommended client conventions on top of any object exposing the simulated
cluster interface:

* creating a name returns the creation operation's identifier; attribute
  updates for that name carry it in their ``prev`` sets, so attributes are
  never applied before the object exists (the exact scenario discussed in
  Section 11.2);
* ordinary lookups are non-strict (fast, possibly slightly stale);
* ``lookup(..., consistent=True)`` and ``bind(..., expedient=True)`` issue
  strict operations, giving the "special update feature" the paper mentions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common import OperationId
from repro.datatypes.directory import DirectoryType


class DirectoryService:
    """A name service facade over an ESDS deployment.

    Parameters
    ----------
    cluster:
        Any object with the ``execute(client, operator, prev=..., strict=...)``
        interface (:class:`~repro.sim.cluster.SimulatedCluster` or a baseline).
    client:
        The client identifier this facade submits under.
    """

    def __init__(self, cluster, client: str) -> None:
        self.cluster = cluster
        self.client = client
        #: Identifier of the operation that created each known name, used to
        #: order attribute updates after the creation.
        self._creation_ops: Dict[str, OperationId] = {}
        #: Identifier of the most recent update touching each name, used for
        #: read-your-writes lookups.
        self._last_update: Dict[str, OperationId] = {}

    # -- updates -----------------------------------------------------------------

    def bind(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        expedient: bool = False,
    ) -> bool:
        """Create *name* and set its initial attributes.

        With ``expedient=True`` the creation is a strict operation, so the
        response reflects the eventual total order (the paper's "special
        update feature" that applies an update at all replicas expediently).
        """
        operation, created = self.cluster.execute(
            self.client, DirectoryType.create(name), strict=expedient
        )
        self._creation_ops[name] = operation.id
        self._last_update[name] = operation.id
        for attr, value in (attributes or {}).items():
            self.set_attribute(name, attr, value)
        return bool(created)

    def set_attribute(self, name: str, attr: str, value: Any) -> bool:
        """Set one attribute of *name*, ordered after the name's creation."""
        prev = self._dependencies_for(name)
        operation, result = self.cluster.execute(
            self.client, DirectoryType.set_attr(name, attr, value), prev=prev
        )
        self._last_update[name] = operation.id
        return result is True

    def unbind(self, name: str, expedient: bool = False) -> bool:
        """Remove *name* from the directory."""
        prev = self._dependencies_for(name)
        operation, existed = self.cluster.execute(
            self.client, DirectoryType.remove(name), prev=prev, strict=expedient
        )
        self._last_update[name] = operation.id
        return bool(existed)

    # -- queries -----------------------------------------------------------------

    def lookup(self, name: str, consistent: bool = False, read_your_writes: bool = True) -> Optional[Dict[str, Any]]:
        """Look up the attributes of *name*.

        * default: a fast non-strict lookup, ordered after this client's own
          updates to the name (session consistency);
        * ``consistent=True``: a strict lookup reflecting the eventual total
          order of all updates system-wide.
        """
        prev = self._dependencies_for(name) if read_your_writes else ()
        _operation, result = self.cluster.execute(
            self.client, DirectoryType.lookup(name), prev=prev, strict=consistent
        )
        if result is None:
            return None
        return dict(result)

    def get_attribute(self, name: str, attr: str, consistent: bool = False) -> Any:
        """Fetch a single attribute value."""
        prev = self._dependencies_for(name)
        _operation, result = self.cluster.execute(
            self.client, DirectoryType.get_attr(name, attr), prev=prev, strict=consistent
        )
        return result

    def list_names(self, consistent: bool = False) -> List[str]:
        """List every bound name."""
        _operation, result = self.cluster.execute(
            self.client, DirectoryType.list_names(), strict=consistent
        )
        return list(result)

    # -- helpers -----------------------------------------------------------------

    def _dependencies_for(self, name: str) -> Tuple[OperationId, ...]:
        deps = []
        if name in self._creation_ops:
            deps.append(self._creation_ops[name])
        if name in self._last_update and self._last_update[name] != self._creation_ops.get(name):
            deps.append(self._last_update[name])
        return tuple(deps)
