"""Applications built on the eventually-serializable data service
(Section 11.2 of the paper): a distributed directory / name service and a
distributed object (type/implementation) repository."""

from repro.apps.directory import DirectoryService
from repro.apps.repository import ObjectRepository

__all__ = ["DirectoryService", "ObjectRepository"]
