"""A small (non-live) I/O automaton framework (Section 3 of the paper).

The paper specifies both the eventually-serializable data service and the
lazy-replication algorithm as I/O automata and relates them with forward
simulations.  This package provides an executable version of that model:

* :mod:`repro.automata.automaton` — actions, signatures and the automaton
  base class;
* :mod:`repro.automata.composition` — compatible composition and hiding;
* :mod:`repro.automata.executions` — executions, traces and a pseudo-random
  scheduler used for state-space exploration in the tests;
* :mod:`repro.automata.simulation` — a step-by-step forward-simulation
  checker (Theorem 3.2 applied to explored executions).

The framework is deliberately explicit-state and untyped: states are whatever
Python objects the automaton keeps, and actions carry a ``kind`` plus keyword
parameters.  This keeps the specification automata close to the paper's
pseudocode (Figs. 1, 2, 3, 5, 6, 7).
"""

from repro.automata.automaton import Action, IOAutomaton, Signature
from repro.automata.composition import Composition, hide
from repro.automata.executions import Execution, Event, RandomScheduler
from repro.automata.simulation import ForwardSimulationChecker, StepCorrespondence

__all__ = [
    "Action",
    "IOAutomaton",
    "Signature",
    "Composition",
    "hide",
    "Execution",
    "Event",
    "RandomScheduler",
    "ForwardSimulationChecker",
    "StepCorrespondence",
]
