"""Actions, signatures, and the (non-live) I/O automaton base class.

A non-live I/O automaton (Section 3) has three disjoint sets of actions
(input, output, internal), a set of states with a nonempty subset of start
states, and a step relation such that every input action is enabled in every
state.

This executable rendering keeps the *current* state inside the automaton
object (mutable), and exposes:

* ``signature`` — which action kinds are input / output / internal;
* ``enabled(action)`` — the precondition;
* ``apply(action)`` — the effect (only called when enabled, except for input
  actions which are always enabled per the model);
* ``candidate_actions(rng)`` — a sample of currently enabled locally
  controlled actions, used by the random scheduler for exploration.

States are compared and recorded through ``snapshot()``, which must return a
deep, immutable-enough copy of the automaton's state for invariant checking
and simulation proofs.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping

from repro.common import SpecificationError


@dataclass(frozen=True)
class Signature:
    """The action signature of an automaton: disjoint kind sets."""

    inputs: FrozenSet[str] = frozenset()
    outputs: FrozenSet[str] = frozenset()
    internals: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        overlaps = (
            (self.inputs & self.outputs)
            | (self.inputs & self.internals)
            | (self.outputs & self.internals)
        )
        if overlaps:
            raise ValueError(f"action kinds appear in two classes: {sorted(overlaps)}")

    @property
    def external(self) -> FrozenSet[str]:
        """External action kinds (inputs and outputs)."""
        return self.inputs | self.outputs

    @property
    def all_kinds(self) -> FrozenSet[str]:
        """Every action kind of the automaton."""
        return self.inputs | self.outputs | self.internals

    def classify(self, kind: str) -> str:
        """Return ``"input"``, ``"output"`` or ``"internal"`` for *kind*."""
        if kind in self.inputs:
            return "input"
        if kind in self.outputs:
            return "output"
        if kind in self.internals:
            return "internal"
        raise KeyError(f"unknown action kind: {kind}")


class Action:
    """An action instance: a kind plus keyword parameters.

    Parameters are stored in a plain dict; equality is structural.  Actions
    are not required to be hashable because parameters may include partial
    orders or sets.
    """

    __slots__ = ("kind", "params")

    def __init__(self, kind: str, **params: Any) -> None:
        self.kind = kind
        self.params: Dict[str, Any] = params

    def __getitem__(self, key: str) -> Any:
        return self.params[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Action):
            return NotImplemented
        return self.kind == other.kind and self.params == other.params

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{self.kind}({inner})"


class IOAutomaton:
    """Base class for executable non-live I/O automata.

    Subclasses set :attr:`signature`, keep their state in instance attributes,
    and implement :meth:`enabled`, :meth:`apply` and
    :meth:`candidate_actions`.
    """

    #: Human-readable name (used in error messages and traces).
    name: str = "automaton"

    #: The automaton's signature; subclasses must override.
    signature: Signature = Signature()

    # -- interface ------------------------------------------------------------

    def enabled(self, action: Action) -> bool:
        """Is *action* enabled in the current state?

        Input actions are always enabled (required by the model); locally
        controlled actions consult :meth:`precondition`.
        """
        kind_class = self.signature.classify(action.kind)
        if kind_class == "input":
            return True
        return self.precondition(action)

    def precondition(self, action: Action) -> bool:
        """The precondition of a locally controlled action.  Default: True."""
        return True

    def apply(self, action: Action) -> None:
        """The effect of *action* on the state.

        Subclasses must override.  ``apply`` is only invoked after
        :meth:`enabled` returned ``True`` (the executions module enforces
        this), so effects may assume their preconditions.
        """
        raise NotImplementedError

    def step(self, action: Action) -> None:
        """Check the precondition and apply the action, raising
        :class:`~repro.common.SpecificationError` when disabled."""
        if action.kind not in self.signature.all_kinds:
            raise SpecificationError(
                f"{self.name}: action kind {action.kind!r} not in signature"
            )
        if not self.enabled(action):
            raise SpecificationError(f"{self.name}: action {action!r} is not enabled")
        self.apply(action)

    def candidate_actions(self, rng: random.Random) -> List[Action]:
        """A (possibly sampled) list of enabled locally controlled actions.

        Used by :class:`~repro.automata.executions.RandomScheduler`; the
        default is no locally controlled activity.
        """
        return []

    # -- state bookkeeping ----------------------------------------------------

    def snapshot(self) -> Mapping[str, Any]:
        """A deep copy of the automaton's visible state variables.

        The default deep-copies every public instance attribute; subclasses
        may override for efficiency or to expose derived variables.
        """
        return {
            key: copy.deepcopy(value)
            for key, value in vars(self).items()
            if not key.startswith("_")
        }

    # -- helpers --------------------------------------------------------------

    def is_input(self, kind: str) -> bool:
        return kind in self.signature.inputs

    def is_output(self, kind: str) -> bool:
        return kind in self.signature.outputs

    def is_internal(self, kind: str) -> bool:
        return kind in self.signature.internals

    def is_external(self, kind: str) -> bool:
        return kind in self.signature.external

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


def check_compatible(automata: Iterable[IOAutomaton]) -> None:
    """Raise ``ValueError`` unless the automata are compatible (Section 3).

    Compatibility requires that internal action kinds are private to each
    automaton and that no action kind is an output of two automata.
    """
    autos = list(automata)
    for i, a in enumerate(autos):
        for b in autos[i + 1:]:
            shared_internal = (a.signature.internals & b.signature.all_kinds) | (
                b.signature.internals & a.signature.all_kinds
            )
            if shared_internal:
                raise ValueError(
                    f"automata {a.name} and {b.name} share internal action kinds "
                    f"{sorted(shared_internal)}"
                )
            shared_output = a.signature.outputs & b.signature.outputs
            if shared_output:
                raise ValueError(
                    f"automata {a.name} and {b.name} both output "
                    f"{sorted(shared_output)}"
                )
