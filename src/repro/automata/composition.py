"""Composition and hiding of I/O automata (Section 3).

The composition of a compatible set of automata identifies actions with the
same kind: when an action is executed, every component whose signature
contains that kind takes the step.  An action kind that is an output of some
component and an input of others becomes an output of the composition; action
kinds that are inputs of every component that has them remain inputs.
Internal kinds stay internal.

``hide`` reclassifies a set of output kinds as internal, so that they no
longer appear in traces (used for the send/receive actions of ESDS-Alg).
"""

from __future__ import annotations

import random
from typing import Any, FrozenSet, Iterable, List, Mapping, Sequence

from repro.automata.automaton import Action, IOAutomaton, Signature, check_compatible
from repro.common import SpecificationError


class Composition(IOAutomaton):
    """The composition of a compatible collection of automata."""

    def __init__(self, components: Sequence[IOAutomaton], name: str = "composition") -> None:
        components = list(components)
        if not components:
            raise ValueError("composition requires at least one component")
        check_compatible(components)
        self.name = name
        self._components: List[IOAutomaton] = components
        self._hidden: FrozenSet[str] = frozenset()
        self.signature = self._build_signature()

    # -- signature ------------------------------------------------------------

    def _build_signature(self) -> Signature:
        all_inputs: set = set()
        all_outputs: set = set()
        all_internals: set = set()
        for component in self._components:
            all_inputs |= component.signature.inputs
            all_outputs |= component.signature.outputs
            all_internals |= component.signature.internals
        inputs = (all_inputs - all_outputs) - self._hidden
        outputs = all_outputs - self._hidden
        internals = all_internals | (self._hidden & all_outputs)
        return Signature(
            inputs=frozenset(inputs),
            outputs=frozenset(outputs),
            internals=frozenset(internals),
        )

    @property
    def components(self) -> List[IOAutomaton]:
        """The component automata, in composition order."""
        return list(self._components)

    def component_named(self, name: str) -> IOAutomaton:
        """Look a component up by its ``name`` attribute."""
        for component in self._components:
            if component.name == name:
                return component
        raise KeyError(f"no component named {name!r}")

    # -- steps ----------------------------------------------------------------

    def participants(self, kind: str) -> List[IOAutomaton]:
        """Every component whose signature mentions *kind*."""
        return [c for c in self._components if kind in c.signature.all_kinds]

    def enabled(self, action: Action) -> bool:
        """An action of the composition is enabled iff it is enabled in every
        participating component for which it is locally controlled."""
        participants = self.participants(action.kind)
        if not participants:
            return False
        for component in participants:
            kind_class = component.signature.classify(action.kind)
            if kind_class != "input" and not component.enabled(action):
                return False
        return True

    def apply(self, action: Action) -> None:
        participants = self.participants(action.kind)
        if not participants:
            raise SpecificationError(
                f"{self.name}: no component participates in {action.kind!r}"
            )
        for component in participants:
            component.apply(action)

    def candidate_actions(self, rng: random.Random) -> List[Action]:
        """Locally controlled candidates from every component.

        A candidate produced by the owner of an output/internal kind is kept
        only if the composition as a whole enables it (input participants are
        always enabled, so in practice this re-checks only the owner).
        """
        candidates: List[Action] = []
        for component in self._components:
            for action in component.candidate_actions(rng):
                kind_class = component.signature.classify(action.kind)
                if kind_class == "input":
                    continue
                if self.enabled(action):
                    candidates.append(action)
        return candidates

    # -- state ----------------------------------------------------------------

    def snapshot(self) -> Mapping[str, Any]:
        return {component.name: component.snapshot() for component in self._components}


def hide(composition: Composition, kinds: Iterable[str]) -> Composition:
    """Hide the output action kinds *kinds* of *composition* (in place).

    Returns the same composition object with its signature rebuilt, mirroring
    the paper's hiding operator.  Hiding only affects classification (traces);
    steps are unchanged.
    """
    hidden = frozenset(kinds)
    unknown = hidden - composition.signature.outputs
    if unknown:
        raise ValueError(f"cannot hide non-output action kinds: {sorted(unknown)}")
    composition._hidden = composition._hidden | hidden
    composition.signature = composition._build_signature()
    return composition
