"""Forward-simulation step checking (Theorem 3.2, applied operationally).

A forward simulation from automaton A to automaton B maps each step of A to
an execution fragment of B with the same external image, starting and ending
in related states.  Checking the existence of such a fragment in general
requires search; in the paper (Sections 5.3 and 8) the fragment is given
constructively for each action of A.  We mirror that: the user supplies a
*step correspondence* that, given the concrete action and the concrete states
before/after it, returns the list of abstract actions to execute, and a
relation predicate to verify afterwards.

The checker then verifies, for each concrete step:

1. every produced abstract action is enabled when executed (preconditions of
   B hold) — executing a disabled action raises;
2. the external image matches (the external actions among the abstract
   actions equal the concrete action's external image);
3. the resulting abstract state is related to the resulting concrete state.

This turns the paper's simulation proofs (Fig. 4 and Fig. 9) into runnable
checks over explored executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Mapping, Optional

from repro.automata.automaton import Action, IOAutomaton
from repro.common import SimulationRelationError

#: A step correspondence maps (concrete_action, pre_state, post_state,
#: abstract_automaton) to the abstract actions that simulate the step.
StepCorrespondence = Callable[
    [Action, Mapping[str, Any], Mapping[str, Any], IOAutomaton], List[Action]
]

#: A relation predicate receives (concrete_state, abstract_automaton) and
#: raises (or returns False) when the states are not related.
RelationPredicate = Callable[[Mapping[str, Any], IOAutomaton], bool]


@dataclass
class SimulationReport:
    """Summary of a completed simulation check."""

    steps_checked: int
    abstract_steps_taken: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"simulation check: {self.steps_checked} concrete steps matched by "
            f"{self.abstract_steps_taken} abstract steps"
        )


class ForwardSimulationChecker:
    """Checks a forward simulation along a single concrete execution.

    The abstract automaton is advanced in lock-step with the concrete one; the
    concrete execution is supplied step by step (action plus pre/post
    snapshots), typically by the :class:`~repro.automata.executions.RandomScheduler`
    with ``record_snapshots=True`` or directly by the verification harness.
    """

    def __init__(
        self,
        abstract: IOAutomaton,
        correspondence: StepCorrespondence,
        relation: RelationPredicate,
        external_kinds: Optional[Iterable[str]] = None,
    ) -> None:
        self.abstract = abstract
        self.correspondence = correspondence
        self.relation = relation
        self.external_kinds = (
            set(external_kinds)
            if external_kinds is not None
            else set(abstract.signature.external)
        )
        self.steps_checked = 0
        self.abstract_steps_taken = 0

    def check_start(self, concrete_state: Mapping[str, Any]) -> None:
        """Verify the start states are related."""
        if not self.relation(concrete_state, self.abstract):
            raise SimulationRelationError("start states are not related")

    def check_step(
        self,
        action: Action,
        pre_state: Mapping[str, Any],
        post_state: Mapping[str, Any],
    ) -> List[Action]:
        """Match one concrete step and verify the relation afterwards.

        Returns the abstract actions executed.
        """
        abstract_actions = self.correspondence(action, pre_state, post_state, self.abstract)

        concrete_external = [action] if action.kind in self.external_kinds else []
        abstract_external = [a for a in abstract_actions if a.kind in self.external_kinds]
        if [a.kind for a in concrete_external] != [a.kind for a in abstract_external]:
            raise SimulationRelationError(
                f"external image mismatch for {action!r}: concrete "
                f"{[a.kind for a in concrete_external]} vs abstract "
                f"{[a.kind for a in abstract_external]}"
            )
        for concrete, abstract in zip(concrete_external, abstract_external):
            if concrete.params != abstract.params:
                raise SimulationRelationError(
                    f"external action parameters differ: {concrete!r} vs {abstract!r}"
                )

        for abstract_action in abstract_actions:
            try:
                self.abstract.step(abstract_action)
            except Exception as exc:
                raise SimulationRelationError(
                    f"abstract action {abstract_action!r} not enabled while matching "
                    f"{action!r}: {exc}"
                ) from exc
            self.abstract_steps_taken += 1

        if not self.relation(post_state, self.abstract):
            raise SimulationRelationError(
                f"states not related after matching {action!r}"
            )
        self.steps_checked += 1
        return abstract_actions

    def report(self) -> SimulationReport:
        """Return a summary of the checking performed so far."""
        return SimulationReport(
            steps_checked=self.steps_checked,
            abstract_steps_taken=self.abstract_steps_taken,
        )
