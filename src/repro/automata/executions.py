"""Executions, traces and a pseudo-random scheduler.

An execution fragment is an alternating sequence of states and actions; its
external image (the subsequence of external actions) is a trace.  Because the
specification automata are highly nondeterministic, the tests explore their
behaviour with a seeded random scheduler that repeatedly picks one enabled
locally controlled action, optionally interleaving environment-supplied input
actions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Mapping, Optional

from repro.automata.automaton import Action, IOAutomaton


@dataclass
class Event:
    """One occurrence of an action in an execution, with optional timestamp."""

    action: Action
    index: int
    time: Optional[float] = None

    @property
    def kind(self) -> str:
        return self.action.kind


@dataclass
class Execution:
    """A recorded execution: events plus (optionally) state snapshots."""

    automaton_name: str
    events: List[Event] = field(default_factory=list)
    snapshots: List[Mapping[str, Any]] = field(default_factory=list)

    def record(self, action: Action, snapshot: Optional[Mapping[str, Any]] = None,
               time: Optional[float] = None) -> Event:
        """Append an event (and snapshot, if provided) to the execution."""
        event = Event(action=action, index=len(self.events), time=time)
        self.events.append(event)
        if snapshot is not None:
            self.snapshots.append(snapshot)
        return event

    def trace(self, external_kinds: Iterable[str]) -> List[Event]:
        """The external image of this execution, restricted to *external_kinds*."""
        kinds = set(external_kinds)
        return [event for event in self.events if event.kind in kinds]

    def actions_of_kind(self, kind: str) -> List[Action]:
        """Every action of the given kind, in order."""
        return [event.action for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


class RandomScheduler:
    """Drives a (closed) automaton by repeatedly executing random enabled
    locally controlled actions.

    Parameters
    ----------
    automaton:
        The automaton (usually a :class:`~repro.automata.composition.Composition`
        of the system under test and its environment) to drive.
    seed:
        Seed for the pseudo-random choices, for reproducibility.
    invariant:
        Optional callable invoked after every step with the automaton; it
        should raise on violation (used to check the paper's invariants on
        every reachable state visited).
    record_snapshots:
        When true, a deep snapshot of the automaton state is recorded after
        every step (memory-heavy; used by the simulation-relation tests).
    """

    def __init__(
        self,
        automaton: IOAutomaton,
        seed: int = 0,
        invariant: Optional[Callable[[IOAutomaton], None]] = None,
        record_snapshots: bool = False,
    ) -> None:
        self.automaton = automaton
        self.rng = random.Random(seed)
        self.invariant = invariant
        self.record_snapshots = record_snapshots
        self.execution = Execution(automaton_name=automaton.name)
        if self.record_snapshots:
            self.execution.snapshots.append(automaton.snapshot())

    def step(self) -> Optional[Action]:
        """Execute one randomly chosen enabled locally controlled action.

        Returns the action executed, or ``None`` if nothing was enabled.
        """
        candidates = self.automaton.candidate_actions(self.rng)
        if not candidates:
            return None
        action = self.rng.choice(candidates)
        self.automaton.step(action)
        snapshot = self.automaton.snapshot() if self.record_snapshots else None
        self.execution.record(action, snapshot)
        if self.invariant is not None:
            self.invariant(self.automaton)
        return action

    def inject(self, action: Action) -> None:
        """Execute an environment-chosen action (typically an input of the
        closed system, or a specific locally controlled action a test wants
        to force)."""
        self.automaton.step(action)
        snapshot = self.automaton.snapshot() if self.record_snapshots else None
        self.execution.record(action, snapshot)
        if self.invariant is not None:
            self.invariant(self.automaton)

    def run(self, steps: int, stop_when_quiescent: bool = True) -> Execution:
        """Run up to *steps* scheduler steps.

        Stops early if no locally controlled action is enabled and
        *stop_when_quiescent* is true.
        """
        for _ in range(steps):
            action = self.step()
            if action is None and stop_when_quiescent:
                break
        return self.execution
