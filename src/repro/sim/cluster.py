"""A simulated ESDS deployment.

``SimulatedCluster`` instantiates the algorithm's replica and front-end state
machines, connects them through a :class:`~repro.sim.network.SimulatedNetwork`
with the Section 9.1 timing parameters (``df``, ``dg``, gossip period ``g``),
adds a per-operation service time at replicas (so that throughput saturation
and scaling are observable, as in Cheiner's experiments), and drives the
whole thing from a discrete-event loop.

The cluster exposes two usage styles:

* an asynchronous style used by the benchmarks: ``submit`` operations (or use
  :func:`repro.sim.workload.run_workload`), ``run`` the clock, then read the
  metrics;
* a synchronous facade used by the examples and applications: ``execute``
  submits one operation and runs the simulation until its response arrives,
  returning the value — the closest analogue of calling a real service.
"""

from __future__ import annotations

import random
from dataclasses import InitVar, dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algorithm.batchcore import core_factory
from repro.algorithm.checkpoint import CompactionLedger, CompactionPolicy
from repro.algorithm.frontend import FrontEndCore
from repro.algorithm.labels import label_min, label_sort_key
from repro.algorithm.messages import GossipMessage, RequestMessage, ResponseMessage
from repro.algorithm.replica import ReplicaCore
from repro.common import (
    INFINITY,
    ConfigurationError,
    OperationId,
    OperationIdGenerator,
    ensure_not_stale,
)
from repro.config import ReplicaConfig
from repro.core.operations import OperationDescriptor, make_operation
from repro.datatypes.base import Operator, SerialDataType
from repro.sim.events import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkModel, SimulatedNetwork
from repro.spec.guarantees import TraceRecord

ReplicaFactory = Callable[[str, Sequence[str], SerialDataType], ReplicaCore]

#: Marker wrapped around a transfer payload entry tampered in flight by the
#: corruption adversary — any repr-visible change would do; a distinct tag
#: keeps debugging obvious.
CORRUPTION_MARKER = "__corrupted__"


def _tamper_transfer(message):
    """Flip bytes in one checkpoint-transfer chunk (corruption adversary).

    The tampered copy keeps the original digest field, modelling payload
    bits flipped in flight while the digest rides along intact: the
    receiver recomputes the assembled checkpoint's digest and rejects the
    mismatch.  One retained value is replaced when the chunk carries any;
    otherwise the base-state blob of the final chunk is tampered.
    """
    from dataclasses import replace

    if message.values_chunk:
        first = next(iter(message.values_chunk))
        tampered = dict(message.values_chunk)
        tampered[first] = (CORRUPTION_MARKER, tampered[first])
        return replace(message, values_chunk=tampered)
    return replace(message, base_state=(CORRUPTION_MARKER, message.base_state))


def eventual_order_of(cluster) -> List[OperationId]:
    """Identifiers of all requested operations ordered by system-wide
    minimum label (unlabelled operations last, deterministically).

    The compacted stable prefix comes first in its agreed (ledger) order:
    the labels below the frontier are deliberately forgotten, and every
    tracked label exceeds them.

    Duck-typed over any harness exposing ``requested``, ``replicas`` and
    ``compaction_ledger`` — the simulator, the wire harness and the asyncio
    runtime (:class:`repro.net.runtime.NetCluster`) all share this oracle.
    """
    def minlabel(op_id: OperationId):
        best = INFINITY
        for replica in cluster.replicas.values():
            best = label_min(best, replica.label_of(op_id))
        return best

    compacted = cluster.compaction_ledger.ids
    prefix = [x.id for x in cluster.compaction_ledger.prefix]
    labelled = [
        op_id
        for op_id in cluster.requested
        if op_id not in compacted and minlabel(op_id) is not INFINITY
    ]
    labelled.sort(key=lambda op_id: label_sort_key(minlabel(op_id)))
    unlabelled = sorted(
        (
            op_id
            for op_id in cluster.requested
            if op_id not in compacted and minlabel(op_id) is INFINITY
        ),
        key=repr,
    )
    return prefix + labelled + unlabelled


def algorithm_view_of(cluster) -> "AlgorithmSystem":
    """An :class:`~repro.algorithm.system.AlgorithmSystem`-shaped view of a
    quiescent harness, for the Section 7/8 invariant checker and the trace
    oracles.

    The harness keeps in-flight messages inside its transport (scheduled
    events or sockets) rather than explicit channels, so the view models
    every channel as empty — it is faithful exactly when the network is
    quiet.  Shared by the simulator, the wire harness and the asyncio
    runtime (same duck-typed surface as :func:`eventual_order_of`).
    """
    from repro.algorithm.system import AlgorithmSystem
    from repro.spec.users import Users

    view = AlgorithmSystem.__new__(AlgorithmSystem)
    view.data_type = cluster.data_type
    view.replica_ids = cluster.replica_ids
    view.client_ids = cluster.client_ids
    view.users = Users()
    view.users.requested = set(cluster.requested.values())
    view.users.responded = dict(cluster.responded)
    view.frontends = cluster.frontends
    view.replicas = cluster.replicas
    view.request_channels = {}
    view.response_channels = {}
    view.gossip_channels = {}
    view.trace = cluster.trace
    view.compaction_ledger = cluster.compaction_ledger
    return view


def drive_until(
    simulator: Simulator,
    is_done: Callable[[], bool],
    max_time: float,
    max_events: Optional[int] = None,
) -> None:
    """Step *simulator* until *is_done* holds, the queue drains, or the
    time/event budget is exhausted — the one drive loop behind every
    "run until answered" facade (single-cluster and sharded alike)."""
    deadline = simulator.now + max_time
    events = 0
    while not is_done() and simulator.now < deadline:
        if not simulator.step():
            break
        events += 1
        if max_events is not None and events >= max_events:
            break


@dataclass
class SimulationParams:
    """Timing and policy parameters of a simulated deployment.

    ``df``, ``dg`` and ``gossip_period`` are the Section 9.1 quantities; the
    remaining fields model the implementation aspects the paper abstracts
    away but Cheiner's evaluation depends on (processing capacity, front-end
    routing).
    """

    #: Maximum front-end <-> replica message delay (the paper's ``df``).
    df: float = 1.0
    #: Maximum replica <-> replica message delay (the paper's ``dg``).
    dg: float = 1.0
    #: Time between successive gossip sends from a replica (the paper's ``g``).
    gossip_period: float = 2.0
    #: Delay jitter fraction; 0 means deterministic worst-case delays.
    jitter: float = 0.0
    #: Per-message loss probability (safety must be unaffected).
    loss_probability: float = 0.0
    #: Delay multiplier applied during delay-spike fault windows.
    spike_factor: float = 1.0
    #: Time a replica is busy processing one client request.
    service_time: float = 0.0
    #: Time a replica is busy processing one gossip message.
    gossip_processing_time: float = 0.0
    #: Number of replicas each request is sent to (>=1; extras are redundant).
    request_fanout: int = 1
    #: Front-end routing policy: "affinity" (client pinned to one replica),
    #: "round_robin" or "random".
    frontend_policy: str = "affinity"
    #: Stagger the first gossip tick of each replica to avoid lock-step bursts.
    gossip_stagger: bool = True
    #: Track the time at which each operation becomes stable everywhere
    #: (adds bookkeeping cost; needed by experiment E5).
    track_stabilization: bool = False
    #: When set, front ends re-send the request for an unanswered operation
    #: every this-many time units (the repeated ``send_cr`` the paper allows,
    #: used to mask message loss and partitions).
    retransmit_interval: Optional[float] = None
    #: Transmit destination-specific gossip deltas instead of full state
    #: (Section 10.4, made ack-based; see :mod:`repro.algorithm.delta`).
    delta_gossip: bool = False
    #: With delta gossip, send a full-state message every this-many sends to
    #: a peer (the crash-recovery fallback).
    full_state_interval: int = 8
    #: Replicas cache their last response replay and re-apply only the
    #: changed suffix (values are unchanged; replay work drops).
    incremental_replay: bool = False
    #: Use the raw-speed replay/ordering core
    #: (:class:`~repro.algorithm.fastcore.FastReplicaCore`) as the default
    #: replica variant: interned labels/ids, bitset knowledge mirrors and an
    #: epoch-tagged replay cache — execution-identical to the base core, just
    #: faster.  Ignored when an explicit ``replica_factory`` is supplied.
    fast_core: bool = False
    #: Use the struct-of-arrays batch replay kernel
    #: (:class:`~repro.algorithm.batchcore.BatchReplicaCore`) on top of the
    #: fast core (requires ``fast_core=True``): deferred batch gossip
    #: splices, a verified-solid compaction prefix and a prev-dependency
    #: ready queue — execution-identical, faster still.
    batch_replay: bool = False
    #: Fast path: buffer gossip messages arriving at a replica within the
    #: same simulation instant and run the post-merge work (``do_it`` sweep,
    #: responses, stabilization tracking) once per instant instead of once
    #: per message.
    batch_gossip: bool = False
    #: Stability-driven checkpoint compaction policy; ``None`` disables it.
    #: With a policy set, replicas fold their stable-everywhere prefix into a
    #: checkpoint and drop the per-operation records — responses are
    #: unchanged, tracked state stays bounded by the unstable suffix.
    compaction: Optional[CompactionPolicy] = None
    #: Advert/pull checkpoint gossip: full-state (and frontier-advancing
    #: delta) messages carry a compact advert instead of the checkpoint
    #: body; a replica behind the advertised frontier pulls the body on
    #: demand.  Steady-state gossip payload becomes independent of the
    #: history length (benchmark E11).
    advert_gossip: bool = False
    #: With advert gossip, the maximum retained values per checkpoint
    #: transfer chunk (``None`` = one transfer message).
    checkpoint_chunk: Optional[int] = None
    #: With compaction enabled, additionally force a compaction sweep on
    #: every replica at this simulated-time interval (ignoring the policy's
    #: ``min_batch`` amortization gate).  ``None`` leaves compaction purely
    #: opportunistic (after gossip merges).
    compaction_interval: Optional[float] = None
    #: Unified replica feature configuration: when given, its fields replace
    #: the loose per-feature fields above (``SimulationParams(df=2.0,
    #: replica=ReplicaConfig(fast_core=True, ...))``), so one
    #: :class:`~repro.config.ReplicaConfig` threads through every harness.
    replica: InitVar[Optional[ReplicaConfig]] = None

    def __post_init__(self, replica: Optional[ReplicaConfig] = None) -> None:
        if replica is not None:
            for name, value in replica.as_dict().items():
                setattr(self, name, value)
        if self.request_fanout < 1:
            raise ConfigurationError("request_fanout must be at least 1")
        if self.frontend_policy not in ("affinity", "round_robin", "random"):
            raise ConfigurationError(f"unknown frontend policy {self.frontend_policy!r}")
        if self.gossip_period <= 0:
            raise ConfigurationError("gossip_period must be positive")
        if self.full_state_interval < 1:
            raise ConfigurationError("full_state_interval must be at least 1")
        if self.compaction_interval is not None:
            if self.compaction is None:
                raise ConfigurationError("compaction_interval requires a compaction policy")
            if self.compaction_interval <= 0:
                raise ConfigurationError("compaction_interval must be positive")
        if self.checkpoint_chunk is not None and self.checkpoint_chunk < 1:
            raise ConfigurationError("checkpoint_chunk must be at least 1 or None")
        if self.compaction is not None and not isinstance(self.compaction, CompactionPolicy):
            raise ConfigurationError(
                "SimulationParams.compaction takes a single CompactionPolicy; "
                "per-shard mappings resolve at the sharded entry points"
            )

    @property
    def replica_config(self) -> ReplicaConfig:
        """The replica-level slice of these parameters as the unified
        :class:`~repro.config.ReplicaConfig` (the loose fields stay the
        storage; this is the one object the harnesses configure cores from)."""
        return ReplicaConfig(
            fast_core=self.fast_core,
            batch_replay=self.batch_replay,
            delta_gossip=self.delta_gossip,
            full_state_interval=self.full_state_interval,
            incremental_replay=self.incremental_replay,
            compaction=self.compaction,
            advert_gossip=self.advert_gossip,
            checkpoint_chunk=self.checkpoint_chunk,
            batch_gossip=self.batch_gossip,
            compaction_interval=self.compaction_interval,
        )


class SimulatedCluster:
    """A full ESDS deployment under simulated time."""

    def __init__(
        self,
        data_type: SerialDataType,
        num_replicas: int = 3,
        client_ids: Sequence[str] = ("c0",),
        params: Optional[SimulationParams] = None,
        replica_factory: Optional[ReplicaFactory] = None,
        seed: int = 0,
        simulator: Optional[Simulator] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if num_replicas < 2:
            raise ConfigurationError("the algorithm assumes at least two replicas")
        self.data_type = data_type
        self.params = params or SimulationParams()
        # A shared simulator (and optionally a shared or derived RNG) lets
        # several clusters — the shards of a ShardedCluster — run on one
        # seeded event loop.
        self.rng = rng if rng is not None else random.Random(seed)
        self.simulator = simulator if simulator is not None else Simulator()
        self.network = SimulatedNetwork(
            NetworkModel(
                df=self.params.df,
                dg=self.params.dg,
                jitter=self.params.jitter,
                loss_probability=self.params.loss_probability,
                spike_factor=self.params.spike_factor,
            ),
            self.rng,
        )

        self.replica_ids: Tuple[str, ...] = tuple(f"r{i}" for i in range(num_replicas))
        replica_config = self.params.replica_config
        factory = replica_factory or core_factory(replica_config)
        self.replicas: Dict[str, ReplicaCore] = {
            rid: factory(rid, self.replica_ids, data_type) for rid in self.replica_ids
        }
        #: The agreed compacted stable prefix across the whole cluster (the
        #: replicas themselves forget the order; witnesses and audits need it).
        self.compaction_ledger = CompactionLedger()
        for rid, core in self.replicas.items():
            replica_config.configure_core(core)
            core.on_compact = self._compaction_recorder(rid)
        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.frontends: Dict[str, FrontEndCore] = {
            cid: FrontEndCore(cid, self.replica_ids) for cid in self.client_ids
        }
        self.id_generators: Dict[str, OperationIdGenerator] = {
            cid: OperationIdGenerator(cid) for cid in self.client_ids
        }

        self.metrics = MetricsCollector()
        self.trace = TraceRecord()
        #: Values delivered to clients, by operation identifier.
        self.responded: Dict[OperationId, Any] = {}
        #: Operations declared unanswerable (stale-value NACK from every
        #: replica), with the failure reason.
        self.failed: Dict[OperationId, str] = {}
        self.requested: Dict[OperationId, OperationDescriptor] = {}

        self._crashed: Set[str] = set()
        #: Submitted-but-unanswered operation identifiers (kept incrementally
        #: in sync with ``requested`` / ``responded``).
        self._unanswered: Set[OperationId] = set()
        self._replica_busy_until: Dict[str, float] = {rid: 0.0 for rid in self.replica_ids}
        self._round_robin_index = 0
        self._affinity: Dict[str, str] = {
            cid: self.replica_ids[i % len(self.replica_ids)]
            for i, cid in enumerate(self.client_ids)
        }
        self._gossip_started = False
        #: Set by :meth:`stop` when this cluster is retired (a drained shard
        #: after a live reshard): timers stop rescheduling themselves.
        self._stopped = False
        self._unstable: Set[OperationId] = set()
        #: Batched-gossip fast path: per-replica buffer of same-instant
        #: arrivals and the instant a flush is already scheduled for.
        self._gossip_inbox: Dict[str, List[GossipMessage]] = {
            rid: [] for rid in self.replica_ids
        }
        self._gossip_flush_at: Dict[str, float] = {}
        #: Observed gossip timestamp lag (receiver local clock minus the
        #: sender's ``sent_at`` stamp) — ``(min, max)`` over all deliveries.
        #: Under the clock-skew adversary this widens to roughly the skew
        #: spread; it is never read by the algorithm (observability only).
        self.gossip_lag_bounds: Optional[Tuple[float, float]] = None

    # ===================================================================== #
    # Lifecycle                                                             #
    # ===================================================================== #

    def start(self) -> None:
        """Start the gossip (and compaction) timers.  Called automatically on
        first use."""
        if self._gossip_started:
            return
        self._gossip_started = True
        for index, rid in enumerate(self.replica_ids):
            offset = 0.0
            if self.params.gossip_stagger and len(self.replica_ids) > 1:
                offset = (index / len(self.replica_ids)) * self.params.gossip_period
            self.simulator.schedule(offset + self.params.gossip_period, self._gossip_tick(rid))
        if self.params.compaction_interval is not None:
            for rid in self.replica_ids:
                self.simulator.schedule(
                    self.params.compaction_interval, self._compaction_tick(rid)
                )
        self.metrics.started_at = self.simulator.now

    def _compaction_recorder(self, replica: str):
        """Per-replica ``on_compact`` hook: ledger bookkeeping plus a state
        sample right after the fold (the memory low-water mark)."""
        def record(batch, checkpoint) -> None:
            self.compaction_ledger.record(batch, checkpoint)
            self.metrics.record_tracked_ops(
                replica, self.replicas[replica].tracked_op_count()
            )
        return record

    def _compaction_tick(self, replica: str) -> Callable[[], None]:
        def tick() -> None:
            if self._stopped:
                return
            if replica not in self._crashed:
                self.replicas[replica].maybe_compact(force=True)
            self.simulator.schedule(self.params.compaction_interval, tick)

        return tick

    def stop(self) -> None:
        """Permanently silence this cluster's timers (gossip, forced
        compaction, injection retries).  Used when a drained shard retires
        after a live reshard: its history stays readable — ``responded``,
        ``eventual_order`` and the trace remain valid — but it generates no
        further events.  Only safe once the cluster is idle and converged;
        the reshard coordinator checks both before calling."""
        self._stopped = True

    @property
    def compacted_prefix(self) -> List[OperationDescriptor]:
        """The cluster-wide compacted stable prefix, in the agreed order."""
        return self.compaction_ledger.prefix

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.simulator.now

    def run(self, duration: float, max_events: Optional[int] = None) -> None:
        """Advance simulated time by *duration*."""
        self.start()
        self.simulator.run_until(self.simulator.now + duration, max_events)
        self.metrics.finished_at = self.simulator.now

    def run_until_idle(self, max_time: float = 10_000.0, max_events: int = 5_000_000) -> None:
        """Run until every submitted operation has been answered (or the time
        budget is exhausted — e.g. when a replica stays crashed and strict
        operations cannot complete)."""
        self.start()
        drive_until(
            self.simulator, lambda: not self.outstanding_operations(), max_time, max_events
        )
        self.metrics.finished_at = self.simulator.now

    def outstanding_operations(self) -> int:
        """Number of submitted operations that have not been answered yet.

        Tracked incrementally — ``run_until_idle`` consults this after every
        event, so recomputing the set difference there would cost
        O(events x operations).
        """
        return len(self._unanswered)

    # ===================================================================== #
    # Client interface                                                      #
    # ===================================================================== #

    def make_operation(
        self,
        client: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
    ) -> OperationDescriptor:
        """Build a fresh, well-formed operation descriptor for *client*."""
        if client not in self.id_generators:
            raise ConfigurationError(f"unknown client {client!r}")
        self.data_type.check_operator(operator)
        prev_ids = frozenset(prev)
        # Membership probes against the dict, not a per-call set() of all
        # identifiers ever requested (which made submission O(history)).
        unknown = {p for p in prev_ids if p not in self.requested}
        if unknown:
            raise ConfigurationError(
                f"prev references operations never requested: {sorted(map(str, unknown))}"
            )
        return make_operation(operator, self.id_generators[client].fresh(), prev_ids, strict)

    def submit(
        self,
        client: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
        at: Optional[float] = None,
    ) -> OperationDescriptor:
        """Submit an operation at simulation time *at* (default: now)."""
        operation = self.make_operation(client, operator, prev, strict)
        return self._schedule_operation(operation, at)

    def ensure_client(self, client_id: str) -> None:
        """Admit a client identity after construction (idempotent).

        Live resharding needs this: migrated operations keep their original
        ``client@shard`` minting identity, so the destination cluster hosts
        a ghost front end for every such foreign client, and post-flip
        traffic from relocated keys arrives under identities the destination
        was not built with."""
        if client_id in self.frontends:
            return
        self.client_ids = self.client_ids + (client_id,)
        self.frontends[client_id] = FrontEndCore(client_id, self.replica_ids)
        self.id_generators[client_id] = OperationIdGenerator(client_id)
        self._affinity[client_id] = self.replica_ids[
            len(self._affinity) % len(self.replica_ids)
        ]

    def submit_operation(
        self,
        operation: OperationDescriptor,
        at: Optional[float] = None,
        allow_unknown_prev: Iterable[OperationId] = (),
    ) -> OperationDescriptor:
        """Submit a pre-built descriptor (used by the sharded service layer,
        which mints identifiers itself so they stay unique across shards).

        Validation lives here — :meth:`submit` goes through
        :meth:`make_operation` instead, which performs the same checks while
        constructing the descriptor.

        ``allow_unknown_prev`` admits ``prev`` identifiers not (yet) in
        ``requested``: during a reshard handoff window, post-flip operations
        on moving keys carry barrier constraints naming migrated operations
        whose chain injection is still in flight.  Replicas hold such an
        operation pending until the chain arrives — that wait is the handoff
        stall the E12 benchmark measures."""
        client = operation.id.client
        if client not in self.frontends:
            raise ConfigurationError(f"unknown client {client!r}")
        self.data_type.check_operator(operation.op)
        if operation.id in self.requested:
            raise ConfigurationError(f"operation identifier {operation.id} reused")
        allowed = (
            allow_unknown_prev
            if isinstance(allow_unknown_prev, (set, frozenset))
            else frozenset(allow_unknown_prev)
        )
        unknown = {
            p for p in operation.prev if p not in self.requested and p not in allowed
        }
        if unknown:
            raise ConfigurationError(
                f"prev references operations never requested: {sorted(map(str, unknown))}"
            )
        return self._schedule_operation(operation, at)

    def inject_operation(self, operation: OperationDescriptor) -> OperationDescriptor:
        """Deliver a migrated operation into this cluster as an ordinary
        request, immediately and to *every* live replica.

        The reshard coordinator injects verified slice chains through here.
        Unlike :meth:`submit_operation`, injection broadcasts (migration
        progress must not hinge on one affinity replica's health) and runs
        its own retry loop regardless of ``retransmit_interval`` — the chain
        must land even in deployments that disable client retransmits.
        Chains are injected in order, so the strict prev check holds link by
        link."""
        self.ensure_client(operation.id.client)
        if operation.id in self.requested:
            raise ConfigurationError(f"operation identifier {operation.id} reused")
        unknown = {p for p in operation.prev if p not in self.requested}
        if unknown:
            raise ConfigurationError(
                f"injected chain out of order; unknown prev: {sorted(map(str, unknown))}"
            )
        self.start()
        self.requested[operation.id] = operation
        self._unanswered.add(operation.id)
        self._unstable.add(operation.id)
        self.frontends[operation.id.client].request(operation)
        self.metrics.record_request(operation, self.simulator.now)
        self.trace.record_request(operation)
        self._broadcast_injected(operation)
        return operation

    def _broadcast_injected(self, operation: OperationDescriptor) -> None:
        """Send an injected operation to all live replicas; reschedules
        itself until the operation is answered (or the cluster retires)."""
        if (
            self._stopped
            or operation.id in self.responded
            or operation.id in self.failed
        ):
            return
        client = operation.id.client
        for rid in self.replica_ids:
            if rid not in self._crashed:
                self._send_request(client, rid, operation)
        retry = max(2 * self.params.gossip_period, 4 * self.params.df)
        self.simulator.schedule(retry, lambda: self._broadcast_injected(operation))

    def _schedule_operation(
        self, operation: OperationDescriptor, at: Optional[float]
    ) -> OperationDescriptor:
        self.start()
        # Validate the submission time BEFORE touching any bookkeeping: a
        # rejected submit must not leave a phantom operation behind in
        # requested/_unanswered (it would count as outstanding forever).
        when = self.simulator.now if at is None else at
        if when < self.simulator.now:
            raise ConfigurationError(
                f"cannot submit {operation.id} in the past "
                f"(at={when}, now={self.simulator.now})"
            )
        self.requested[operation.id] = operation
        self._unanswered.add(operation.id)
        self._unstable.add(operation.id)
        self.simulator.schedule_at(when, lambda op=operation: self._on_request(op))
        return operation

    def execute(
        self,
        client: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
        max_time: float = 10_000.0,
    ) -> Tuple[OperationDescriptor, Any]:
        """Synchronous facade: submit, run until answered, return the value."""
        operation = self.submit(client, operator, prev, strict)
        drive_until(self.simulator, lambda: operation.id in self.responded, max_time)
        if operation.id not in self.responded:
            raise RuntimeError(
                f"operation {operation.id} received no response within {max_time} time units"
            )
        return operation, self.responded[operation.id]

    def value_of(self, operation: OperationDescriptor) -> Any:
        """The value returned to the client for *operation* (KeyError if
        unanswered, :class:`~repro.common.StaleValueError` if every replica
        NACKed the retransmit because its value aged out)."""
        ensure_not_stale(self.failed, operation.id)
        return self.responded[operation.id]

    # ===================================================================== #
    # Internal event handlers                                               #
    # ===================================================================== #

    def _choose_replicas(self, client: str) -> List[str]:
        alive = [rid for rid in self.replica_ids if rid not in self._crashed]
        pool = alive or list(self.replica_ids)
        policy = self.params.frontend_policy
        if policy == "affinity":
            primary = self._affinity[client]
            if primary not in pool:
                primary = pool[0]
            ordered = [primary] + [rid for rid in pool if rid != primary]
        elif policy == "round_robin":
            start = self._round_robin_index % len(pool)
            self._round_robin_index += 1
            ordered = pool[start:] + pool[:start]
        else:  # random
            ordered = list(pool)
            self.rng.shuffle(ordered)
        return ordered[: self.params.request_fanout]

    def _on_request(self, operation: OperationDescriptor) -> None:
        client = operation.id.client
        frontend = self.frontends[client]
        frontend.request(operation)
        self.metrics.record_request(operation, self.simulator.now)
        self.trace.record_request(operation)
        for rid in self._choose_replicas(client):
            self._send_request(client, rid, operation)
        if self.params.retransmit_interval is not None:
            self.simulator.schedule(
                self.params.retransmit_interval, lambda: self._retransmit(operation)
            )

    def _retransmit(self, operation: OperationDescriptor) -> None:
        """Re-send the request for a still-unanswered operation (Fig. 6 allows
        the front end to send a pending request repeatedly).

        A stale-value NACK doubles as a redirect signal: once some replica
        has NACKed, retransmits go to the replicas that have *not* NACKed
        yet — under sticky routing (the default ``affinity`` policy) the
        primary would otherwise be retried forever and the all-replicas
        failure verdict could never accumulate.  A failed operation (NACK
        from every replica) stops retransmitting: no replica can ever
        answer it anew."""
        if operation.id in self.responded or operation.id in self.failed:
            return
        client = operation.id.client
        targets = self._choose_replicas(client)
        nacked = self.frontends[client].nacked.get(operation.id, ())
        if nacked:
            alive = [rid for rid in self.replica_ids if rid not in self._crashed]
            remaining = [rid for rid in alive if rid not in nacked]
            targets = remaining or targets
        for rid in targets:
            self._send_request(client, rid, operation)
        self.simulator.schedule(
            self.params.retransmit_interval, lambda: self._retransmit(operation)
        )

    def _transit(self, kind: str, message):
        """Hook applied to every message between send and delivery.

        The base simulator passes objects through untouched;
        :class:`repro.net.wire.WireCluster` overrides this to push each
        message through the binary codec (encode -> frame bytes -> decode),
        measuring real bytes on the wire without perturbing the schedule.
        """
        return message

    def _send_request(self, client: str, replica: str, operation: OperationDescriptor) -> None:
        message = self.frontends[client].make_request_message(operation)
        if self.network.should_drop("request", client, replica):
            return
        self.network.record_sent("request")
        message = self._transit("request", message)
        delay = self.network.delay_for("request", self.simulator.now, client, replica)
        self.simulator.schedule(delay, lambda: self._deliver_request(replica, message))
        dup = self.network.maybe_duplicate("request", self.simulator.now, client, replica)
        if dup is not None:
            self.simulator.schedule(dup, lambda: self._deliver_request(replica, message))

    def _deliver_request(self, replica: str, message: RequestMessage) -> None:
        if replica in self._crashed:
            return
        start = max(self.simulator.now, self._replica_busy_until[replica])
        finish = start + self.params.service_time
        self._replica_busy_until[replica] = finish
        if finish <= self.simulator.now:
            self._process_request(replica, message)
        else:
            self.simulator.schedule_at(finish, lambda: self._process_request(replica, message))

    def _process_request(self, replica: str, message: RequestMessage) -> None:
        if replica in self._crashed:
            return
        core = self.replicas[replica]
        core.receive_request(message)
        for operation in core.take_stale_nacks():
            self._send_response_message(
                replica,
                ResponseMessage(operation=operation, value=None, stale=True, sender=replica),
            )
        core.do_all_ready()
        self._try_respond(replica)

    def _try_respond(self, replica: str) -> None:
        core = self.replicas[replica]
        for operation in core.ready_responses():
            self._send_response_message(replica, core.make_response(operation))

    def _send_response_message(self, replica: str, message: ResponseMessage) -> None:
        client = message.operation.id.client
        if self.network.should_drop("response", replica, client):
            return
        self.network.record_sent("response")
        message = self._transit("response", message)
        delay = self.network.delay_for("response", self.simulator.now, replica, client)
        self.simulator.schedule(delay, lambda: self._deliver_response(client, message))
        dup = self.network.maybe_duplicate("response", self.simulator.now, replica, client)
        if dup is not None:
            self.simulator.schedule(dup, lambda: self._deliver_response(client, message))

    def _deliver_response(self, client: str, message: ResponseMessage) -> None:
        frontend = self.frontends[client]
        if not frontend.receive_response(message):
            # A stale-response NACK may have just tipped the operation into
            # permanent failure (every replica's retained value aged out):
            # surface it and stop counting the operation as outstanding, or
            # run_until_idle would wait for an answer that can never come.
            op_id = message.operation.id
            if message.stale and op_id in frontend.failed and op_id not in self.failed:
                self.failed[op_id] = frontend.failed[op_id]
                self._unanswered.discard(op_id)
            return
        value = frontend.respond(message.operation)
        self.responded[message.operation.id] = value
        self._unanswered.discard(message.operation.id)
        # A late genuine value resurrects a prematurely failed operation
        # (the response outran the NACKs on the unordered network).
        self.failed.pop(message.operation.id, None)
        self.metrics.record_response(message.operation, value, self.simulator.now)
        self.trace.record_response(message.operation, value)

    # -- gossip ------------------------------------------------------------------

    def _gossip_tick(self, replica: str) -> Callable[[], None]:
        def tick() -> None:
            if self._stopped:
                return
            if replica not in self._crashed:
                for destination in self.replica_ids:
                    if destination == replica:
                        continue
                    self._send_gossip(replica, destination)
                self.metrics.record_tracked_ops(
                    replica, self.replicas[replica].tracked_op_count()
                )
            self.simulator.schedule(self.params.gossip_period, tick)

        return tick

    def _send_gossip(self, source: str, destination: str) -> None:
        if source in self._crashed:
            return
        # Decide loss before building the message: a dropped send must not
        # consume a delta-gossip seqno, or the receiver's cumulative-ack
        # frontier would stall on the gap until the next full-state fallback.
        if self.network.should_drop("gossip", source, destination):
            return
        message = self.replicas[source].make_gossip(destination)
        # Stamped with the sender's *local* clock: under the clock-skew
        # adversary this diverges from simulated time — observability only,
        # the algorithm never reads it (timestamps are not load-bearing).
        message.sent_at = self.network.local_clock(source, self.simulator.now)
        self.network.record_sent("gossip", payload_size=message.size_estimate())
        message = self._transit("gossip", message)
        delay = self.network.delay_for("gossip", self.simulator.now, source, destination)
        self.simulator.schedule(delay, lambda: self._deliver_gossip(destination, message))
        # A duplicated delivery reuses the *same* message object: building a
        # second one via make_gossip would consume a fresh delta seqno and
        # turn channel duplication into distinct stream entries.
        dup = self.network.maybe_duplicate("gossip", self.simulator.now, source, destination)
        if dup is not None:
            self.simulator.schedule(dup, lambda: self._deliver_gossip(destination, message))

    def _deliver_gossip(self, destination: str, message: GossipMessage) -> None:
        if destination in self._crashed:
            return
        if message.sent_at is not None:
            lag = self.network.local_clock(destination, self.simulator.now) - message.sent_at
            if self.gossip_lag_bounds is None:
                self.gossip_lag_bounds = (lag, lag)
            else:
                lo, hi = self.gossip_lag_bounds
                self.gossip_lag_bounds = (min(lo, lag), max(hi, lag))
        if self.params.batch_gossip:
            # Fast path: coalesce every arrival at this instant and process
            # the batch once.  Same-instant events run FIFO, so the flush
            # scheduled at zero delay runs after the remaining deliveries of
            # this instant have been buffered.
            self._gossip_inbox[destination].append(message)
            if self._gossip_flush_at.get(destination) != self.simulator.now:
                self._gossip_flush_at[destination] = self.simulator.now
                self.simulator.schedule(0.0, lambda: self._flush_gossip(destination))
            return
        if self.params.gossip_processing_time > 0:
            start = max(self.simulator.now, self._replica_busy_until[destination])
            finish = start + self.params.gossip_processing_time
            self._replica_busy_until[destination] = finish
            if finish > self.simulator.now:
                self.simulator.schedule_at(
                    finish, lambda: self._process_gossip(destination, message)
                )
                return
        self._process_gossip(destination, message)

    def _flush_gossip(self, destination: str) -> None:
        """Merge every gossip message buffered for *destination*, then run the
        post-merge work once for the whole batch."""
        self._gossip_flush_at.pop(destination, None)
        batch = self._gossip_inbox[destination]
        self._gossip_inbox[destination] = []
        if not batch or destination in self._crashed:
            return
        if self.params.gossip_processing_time > 0:
            # The merge cost is still charged per message; only the
            # post-merge sweep is amortized across the batch.
            start = max(self.simulator.now, self._replica_busy_until[destination])
            finish = start + self.params.gossip_processing_time * len(batch)
            self._replica_busy_until[destination] = finish
            if finish > self.simulator.now:
                self.simulator.schedule_at(
                    finish, lambda: self._process_gossip_batch(destination, batch)
                )
                return
        self._process_gossip_batch(destination, batch)

    def _process_gossip_batch(self, destination: str, batch: List[GossipMessage]) -> None:
        if destination in self._crashed:
            return
        core = self.replicas[destination]
        # One call for the whole coalesced batch: the batch kernel defers
        # its order splices across it; every other variant runs the same
        # sequential per-message merge as before.
        core.receive_gossip_batch(batch)
        for pull in core.take_pending_pulls():
            self._send_pull(destination, pull)
        core.do_all_ready()
        self._try_respond(destination)
        if self.params.track_stabilization:
            self._update_stabilization()

    def _process_gossip(self, destination: str, message: GossipMessage) -> None:
        self._process_gossip_batch(destination, [message])

    # -- advert/pull checkpoint catch-up -----------------------------------------

    def _send_pull(self, source: str, message) -> None:
        """Send a pull request over the gossip fabric (same delay bound
        ``dg``, same loss policy; a dropped pull is retried off the next
        advert that still shows the requester behind)."""
        if self.network.should_drop("pull", source, message.target):
            return
        self.network.record_sent("pull")
        message = self._transit("pull", message)
        delay = self.network.delay_for("pull", self.simulator.now, source, message.target)
        self.simulator.schedule(delay, lambda: self._deliver_pull(message.target, message))
        dup = self.network.maybe_duplicate("pull", self.simulator.now, source, message.target)
        if dup is not None:
            self.simulator.schedule(dup, lambda: self._deliver_pull(message.target, message))

    def _deliver_pull(self, replica: str, message) -> None:
        if replica in self._crashed:
            return
        for transfer in self.replicas[replica].receive_pull_request(message):
            self._send_transfer(replica, transfer)

    def _send_transfer(self, source: str, message) -> None:
        if self.network.should_drop("transfer", source, message.requester):
            return
        self.network.record_sent("transfer", payload_size=message.size_estimate())
        if self.network.should_corrupt_transfer(self.simulator.now):
            message = _tamper_transfer(message)
        # Transit after tampering: the corrupted payload is what crosses the
        # wire, so the codec must carry it faithfully for the receiver's
        # digest check to reject it.
        message = self._transit("transfer", message)
        delay = self.network.delay_for(
            "transfer", self.simulator.now, source, message.requester
        )
        self.simulator.schedule(
            delay, lambda: self._deliver_transfer(message.requester, message)
        )
        dup = self.network.maybe_duplicate(
            "transfer", self.simulator.now, source, message.requester
        )
        if dup is not None:
            self.simulator.schedule(
                dup, lambda: self._deliver_transfer(message.requester, message)
            )

    def _deliver_transfer(self, replica: str, message) -> None:
        if replica in self._crashed:
            return
        core = self.replicas[replica]
        core.receive_transfer(message)
        # A completed transfer can unblock do_it chains (prev chains through
        # the adopted prefix) and pending responses.
        core.do_all_ready()
        self._try_respond(replica)
        if self.params.track_stabilization:
            self._update_stabilization()

    def _update_stabilization(self) -> None:
        if not self._unstable:
            return
        newly_stable: List[OperationId] = []
        for op_id in self._unstable:
            operation = self.requested[op_id]
            if all(rep.knows_stable(operation) for rep in self.replicas.values()):
                newly_stable.append(op_id)
        for op_id in newly_stable:
            self._unstable.discard(op_id)
            self.metrics.record_stabilization(op_id, self.simulator.now)

    # ===================================================================== #
    # Fault injection hooks (used by repro.sim.faults)                      #
    # ===================================================================== #

    def crash_replica(self, replica: str, volatile_memory: bool = True) -> None:
        """Crash a replica; its state is lost when memory is volatile except
        for the locally generated labels kept in stable storage."""
        self._crashed.add(replica)
        self.replicas[replica].crash(volatile_memory=volatile_memory)

    def recover_replica(self, replica: str) -> None:
        """Restart a crashed replica: reload stable storage and ask every
        other replica for fresh gossip (the Section 9.3 recovery protocol)."""
        self._crashed.discard(replica)
        self.replicas[replica].recover_from_stable_storage()
        for other in self.replica_ids:
            if other != replica and other not in self._crashed:
                self._send_gossip(other, replica)
                self._send_gossip(replica, other)

    # ===================================================================== #
    # Derived views                                                         #
    # ===================================================================== #

    def minlabel(self, op_id: OperationId):
        best = INFINITY
        for replica in self.replicas.values():
            best = label_min(best, replica.label_of(op_id))
        return best

    def eventual_order(self) -> List[OperationId]:
        """See :func:`eventual_order_of` (shared across harnesses)."""
        return eventual_order_of(self)

    def algorithm_view(self) -> "AlgorithmSystem":
        """See :func:`algorithm_view_of` (shared across harnesses).

        Faithful exactly when the network is quiet (after
        :meth:`run_until_idle` plus enough gossip rounds for convergence),
        which is when the scenario fuzzer samples it.
        """
        return algorithm_view_of(self)

    def fully_converged(self) -> bool:
        """Has every requested operation become stable at every replica?
        (A compacted operation is stable by construction.)

        Used by tests to decide when the :meth:`algorithm_view` is faithful:
        at convergence no gossip in transit can carry new information.
        """
        requested = set(self.requested.values())
        return all(
            all(replica.knows_stable(op) for op in requested)
            for replica in self.replicas.values()
        )

    def total_value_applications(self) -> int:
        """Total operator applications performed by replicas when computing
        response values (the recomputation cost the Section 10 optimizations
        reduce)."""
        return sum(rep.stats.value_applications for rep in self.replicas.values())

    def total_applications(self) -> int:
        """All operator applications (value computation plus memoization)."""
        return sum(rep.stats.total_applications() for rep in self.replicas.values())
