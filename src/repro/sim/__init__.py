"""Discrete-event simulation substrate for the performance evaluation.

The paper's evaluation (Section 9 analytically, Section 11.1 experimentally
via Cheiner's C++/MPI implementation) measures response latency, throughput
scaling with the number of replicas, and the cost of strict operations.  We
substitute the workstation network with a discrete-event simulator: processes
are the same :mod:`repro.algorithm` state machines, message delays and gossip
periods are explicit simulation parameters (``df``, ``dg``, ``g`` of
Section 9.1), and replicas have a configurable per-operation service time so
that throughput saturation and scaling are observable.

* :mod:`repro.sim.events` — the event queue and simulated clock;
* :mod:`repro.sim.network` — message delays, loss, partitions, delay spikes;
* :mod:`repro.sim.cluster` — the simulated ESDS deployment (replicas, front
  ends, gossip timers) with a synchronous ``execute`` facade;
* :mod:`repro.sim.workload` — client workload generators (operation mix,
  arrival processes, strict fraction, dependency policies);
* :mod:`repro.sim.metrics` — latency / throughput / message accounting;
* :mod:`repro.sim.faults` — crash, restart and timing-violation schedules.
"""

from repro.sim.events import EventQueue, Simulator
from repro.sim.network import NetworkModel, SimulatedNetwork
from repro.sim.metrics import LatencyRecord, MetricsCollector, PerShardMetrics
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.sharded import ShardedCluster
from repro.sim.workload import (
    ClientWorkload,
    KeyedClientWorkload,
    KeyedWorkloadResult,
    KeyedWorkloadSpec,
    WorkloadResult,
    WorkloadSpec,
    run_keyed_workload,
    run_workload,
    zipfian_cdf,
)
from repro.sim.faults import DelaySpike, FaultSchedule, GossipOutage, ReplicaCrash

__all__ = [
    "EventQueue",
    "Simulator",
    "NetworkModel",
    "SimulatedNetwork",
    "LatencyRecord",
    "MetricsCollector",
    "PerShardMetrics",
    "SimulatedCluster",
    "SimulationParams",
    "ShardedCluster",
    "ClientWorkload",
    "WorkloadResult",
    "WorkloadSpec",
    "run_workload",
    "KeyedClientWorkload",
    "KeyedWorkloadResult",
    "KeyedWorkloadSpec",
    "run_keyed_workload",
    "zipfian_cdf",
    "DelaySpike",
    "FaultSchedule",
    "GossipOutage",
    "ReplicaCrash",
]
