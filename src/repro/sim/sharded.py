"""A sharded multi-object ESDS deployment under simulated time.

``ShardedCluster`` is the simulation counterpart of
:class:`~repro.service.frontend.ShardedFrontend`: every shard is a complete
:class:`~repro.sim.cluster.SimulatedCluster` (replicas, front ends, its own
network and gossip timers) managing a :class:`~repro.service.keyed.KeyedStore`
slice of the keyspace, and all shards share ONE seeded discrete-event loop so
that cross-shard interleavings are reproducible from a single seed.  Gossip
within a shard uses the batched same-instant fast path by default (each
shard's replicas coalesce simultaneous arrivals), which is what keeps the
event count linear in the shard count.

Shards are fully independent — no messages cross shard boundaries — so total
throughput scales with the shard count at fixed replicas-per-shard until the
workload's key skew concentrates load (benchmark E9 measures both effects).

Operation identifiers are minted by per-(client, shard) counters under the
``client@shard`` composite identity: the aggregated ``requested`` /
``responded`` maps never collide, a single trace of the whole service
remains well-formed, and each shard sees one contiguous seqno run per
client — so a shard's compacted id summary stays at one interval per
client.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.algorithm.checkpoint import CompactionPolicy
from repro.common import ConfigurationError, OperationId, ensure_not_stale
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import Operator, SerialDataType
from repro.service.keyed import KeyedStore
from repro.service.router import KeyspaceDirectory, ShardRouter, composite_client
from repro.sim.cluster import (
    ReplicaFactory,
    SimulatedCluster,
    SimulationParams,
    drive_until,
)
from repro.sim.events import Simulator
from repro.sim.metrics import PerShardMetrics


class ShardedCluster:
    """N independent simulated ESDS shards on one seeded event loop.

    Parameters
    ----------
    base_type:
        The serial data type stored under every key.
    num_shards:
        Number of shards (ignored when *router* is given).
    replicas_per_shard:
        Replicas in each shard's ESDS group (at least two).
    client_ids:
        Clients; every shard hosts a front end for each client.
    params:
        Per-shard :class:`SimulationParams`.  When omitted, the defaults are
        used with ``batch_gossip=True`` (the per-shard batched-gossip fast
        path).
    seed:
        Single seed for the whole deployment; each shard derives its own
        network RNG from it deterministically.
    compaction:
        Optional checkpoint-compaction override: a single
        :class:`CompactionPolicy` applied to every shard, or a mapping from
        shard id to policy (shards absent from the mapping keep
        ``params.compaction``).  Hot shards can compact aggressively while
        cold ones stay lazy.
    """

    def __init__(
        self,
        base_type: SerialDataType,
        num_shards: int = 2,
        replicas_per_shard: int = 3,
        client_ids: Sequence[str] = ("c0",),
        params: Optional[SimulationParams] = None,
        seed: int = 0,
        router: Optional[ShardRouter] = None,
        replica_factory: Optional[ReplicaFactory] = None,
        virtual_nodes: int = 64,
        compaction: Union[None, CompactionPolicy, Mapping[str, CompactionPolicy]] = None,
        cluster_class: type = SimulatedCluster,
    ) -> None:
        self.base_type = base_type
        self.store_type = KeyedStore(base_type)
        self.params = params if params is not None else SimulationParams(batch_gossip=True)
        self.router = router or ShardRouter.for_count(num_shards, virtual_nodes=virtual_nodes)
        self.shard_ids: Tuple[str, ...] = self.router.shard_ids
        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.simulator = Simulator()

        def shard_params(shard: str) -> SimulationParams:
            if compaction is None:
                return self.params
            policy = (
                compaction.get(shard, self.params.compaction)
                if isinstance(compaction, Mapping)
                else compaction
            )
            if policy is self.params.compaction:
                return self.params
            if policy is None:
                # Disabling one shard must also drop the interval timer, or
                # SimulationParams validation rejects the combination.
                return dataclasses.replace(
                    self.params, compaction=None, compaction_interval=None
                )
            return dataclasses.replace(self.params, compaction=policy)

        # Front ends live under the composite per-shard client identities
        # the directory mints ids with (contiguous seqnos per shard).
        # ``cluster_class`` lets alternative harness shards ride the shared
        # event loop — e.g. :class:`repro.net.wire.WireCluster`, which pushes
        # every message through the binary codec (``--runtime=net``).
        self.shards: Dict[str, SimulatedCluster] = {
            shard: cluster_class(
                self.store_type,
                replicas_per_shard,
                [composite_client(c, shard) for c in self.client_ids],
                params=shard_params(shard),
                replica_factory=replica_factory,
                simulator=self.simulator,
                rng=random.Random(seed * 7919 + index + 1),
            )
            for index, shard in enumerate(self.shard_ids)
        }
        #: Shared routing/bookkeeping: unique identifiers, same-shard prev
        #: validation, operation-to-shard/key records.
        self.directory = KeyspaceDirectory(self.router, self.client_ids, base_type)
        #: Every submitted operation, across shards.
        self.requested: Dict[OperationId, OperationDescriptor] = {}
        self._started = False

    # ===================================================================== #
    # Lifecycle                                                             #
    # ===================================================================== #

    def start(self) -> None:
        """Start every shard's gossip timers on the shared event loop."""
        if self._started:
            return
        self._started = True
        for shard in self.shards.values():
            shard.start()

    @property
    def now(self) -> float:
        """Current simulation time (shared by every shard)."""
        return self.simulator.now

    def run(self, duration: float, max_events: Optional[int] = None) -> None:
        """Advance the shared simulated time by *duration*."""
        self.start()
        self.simulator.run_until(self.simulator.now + duration, max_events)
        for shard in self.shards.values():
            shard.metrics.finished_at = self.simulator.now

    def run_until_idle(self, max_time: float = 10_000.0, max_events: int = 5_000_000) -> None:
        """Run until every submitted operation (on any shard) is answered, or
        the time budget is exhausted."""
        self.start()
        drive_until(
            self.simulator, lambda: not self.outstanding_operations(), max_time, max_events
        )
        for shard in self.shards.values():
            shard.metrics.finished_at = self.simulator.now

    def outstanding_operations(self) -> int:
        """Submitted operations not yet answered, across all shards."""
        return sum(shard.outstanding_operations() for shard in self.shards.values())

    # ===================================================================== #
    # Routing                                                               #
    # ===================================================================== #

    def shard_of(self, key: str) -> str:
        """The shard identifier owning *key*."""
        return self.router.shard_for(key)

    def shard_of_operation(self, op_id: OperationId) -> str:
        """The shard a previously submitted operation was routed to."""
        return self.directory.shard_of_operation(op_id)

    def key_of_operation(self, op_id: OperationId) -> str:
        """The key a previously submitted operation addressed."""
        return self.directory.key_of_operation(op_id)

    def last_operation_on(self, key: str) -> Optional[OperationId]:
        """The most recently submitted operation on *key* (any client)."""
        return self.directory.last_operation_on(key)

    # ===================================================================== #
    # Client interface                                                      #
    # ===================================================================== #

    def submit(
        self,
        client: str,
        key: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
        at: Optional[float] = None,
    ) -> OperationDescriptor:
        """Submit a keyed operation at simulation time *at* (default: now).

        ``prev`` identifiers must belong to operations routed to the same
        shard — always the case for same-key dependency chains.
        """
        # Reject a bad submission time before the directory records anything,
        # so a failed submit cannot leave phantom routing entries that later
        # prev=last_operation_on(key) chains would dangle from.
        if at is not None and at < self.simulator.now:
            raise ConfigurationError(
                f"cannot submit in the past (at={at}, now={self.simulator.now})"
            )
        shard, operation = self.directory.route(client, key, operator, prev, strict)
        self.start()
        self.requested[operation.id] = operation
        self.shards[shard].submit_operation(operation, at=at)
        return operation

    def execute(
        self,
        client: str,
        key: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
        max_time: float = 10_000.0,
    ) -> Tuple[OperationDescriptor, Any]:
        """Synchronous facade: submit, run until answered, return the value."""
        operation = self.submit(client, key, operator, prev, strict)
        shard = self.shards[self.directory.shard_of_operation(operation.id)]
        drive_until(self.simulator, lambda: operation.id in shard.responded, max_time)
        if operation.id not in shard.responded:
            raise RuntimeError(
                f"operation {operation.id} received no response within {max_time} time units"
            )
        return operation, shard.responded[operation.id]

    @property
    def responded(self) -> Dict[OperationId, Any]:
        """Values delivered to clients, across all shards."""
        merged: Dict[OperationId, Any] = {}
        for shard in self.shards.values():
            merged.update(shard.responded)
        return merged

    @property
    def failed(self) -> Dict[OperationId, str]:
        """Operations declared unanswerable (stale-value NACK from every
        replica of their shard), across all shards."""
        merged: Dict[OperationId, str] = {}
        for shard in self.shards.values():
            merged.update(shard.failed)
        return merged

    def value_of(self, operation: OperationDescriptor) -> Any:
        """The value returned for *operation* (KeyError when unanswered,
        :class:`~repro.common.StaleValueError` when it failed for good)."""
        shard = self.directory.shard_of_operation(operation.id)
        cluster = self.shards[shard]
        ensure_not_stale(cluster.failed, operation.id)
        return cluster.responded[operation.id]

    # ===================================================================== #
    # Metrics and verification views                                        #
    # ===================================================================== #

    @property
    def metrics(self) -> PerShardMetrics:
        """Per-shard metric collectors with aggregate summaries."""
        return PerShardMetrics({sid: shard.metrics for sid, shard in self.shards.items()})

    def eventual_orders(self) -> Dict[str, List[OperationId]]:
        """Each shard's eventual total order (by system-wide minimum label)."""
        return {sid: shard.eventual_order() for sid, shard in self.shards.items()}

    def fully_converged(self) -> bool:
        """Has every shard stabilized every one of its operations?"""
        return all(shard.fully_converged() for shard in self.shards.values())

    def check_traces(self) -> None:
        """Check the Theorem 5.8 oracle on every shard's recorded trace."""
        from repro.verification.serializability import check_recorded_trace

        for shard in self.shards.values():
            check_recorded_trace(
                shard.data_type, shard.trace, witness=shard.eventual_order()
            )

    def check_invariants(self) -> None:
        """Run the Section 7/8 invariant checker on every shard's
        :meth:`~repro.sim.cluster.SimulatedCluster.algorithm_view` (faithful
        at network quiescence)."""
        from repro.verification.invariants import AlgorithmInvariantChecker

        for shard in self.shards.values():
            AlgorithmInvariantChecker(shard.algorithm_view()).check_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCluster({self.store_type.name}, shards={len(self.shard_ids)}, "
            f"clients={len(self.client_ids)}, t={self.simulator.now:.1f})"
        )
