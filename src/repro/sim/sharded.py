"""A sharded multi-object ESDS deployment under simulated time.

``ShardedCluster`` is the simulation counterpart of
:class:`~repro.service.frontend.ShardedFrontend`: every shard is a complete
:class:`~repro.sim.cluster.SimulatedCluster` (replicas, front ends, its own
network and gossip timers) managing a :class:`~repro.service.keyed.KeyedStore`
slice of the keyspace, and all shards share ONE seeded discrete-event loop so
that cross-shard interleavings are reproducible from a single seed.  Gossip
within a shard uses the batched same-instant fast path by default (each
shard's replicas coalesce simultaneous arrivals), which is what keeps the
event count linear in the shard count.

Shards are fully independent — no messages cross shard boundaries — so total
throughput scales with the shard count at fixed replicas-per-shard until the
workload's key skew concentrates load (benchmark E9 measures both effects).

Operation identifiers are minted by per-(client, shard) counters under the
``client@shard`` composite identity: the aggregated ``requested`` /
``responded`` maps never collide, a single trace of the whole service
remains well-formed, and each shard sees one contiguous seqno run per
client — so a shard's compacted id summary stays at one interval per
client.
"""

from __future__ import annotations

import dataclasses
import random
import warnings
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.algorithm.checkpoint import CompactionPolicy
from repro.common import (
    ConfigurationError,
    InvariantViolation,
    OperationId,
    ensure_not_stale,
)
from repro.config import UNSET, ReplicaConfig
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import Operator, SerialDataType
from repro.service.keyed import KeyedStore
from repro.service.reshard import SliceAssembly, build_chunks, chain_ops, tamper_chunk
from repro.service.router import (
    KeyRangeMove,
    KeyspaceDirectory,
    ShardRouter,
    TransitionRouter,
    composite_client,
    stable_hash,
)
from repro.sim.cluster import (
    ReplicaFactory,
    SimulatedCluster,
    SimulationParams,
    drive_until,
)
from repro.sim.events import Simulator
from repro.sim.metrics import PerShardMetrics


class _PairMigration:
    """One (source, destination) leg of a live reshard.

    State machine::

        waiting ──flip──> closing ──settled──> transferring ──verified──> done

    * **waiting**: the leg's key ranges still route to the source.
    * **flip** (at ``flip_at``): the transition router starts routing the
      ranges to the destination, the moving operation set is frozen from the
      directory, and per-key barriers are installed.
    * **closing**: the source answers its remaining in-flight operations and
      gossips the slice to stability at every source replica (dual-route
      window — old traffic answered by the source, new traffic held at the
      destination behind the barriers).
    * **transferring**: the frozen slice (source eventual order + recorded
      response values) ships in digest-verified chunks; loss and corruption
      heal by whole-slice re-send under a fresh epoch.
    * **done**: the verified slice was chain-injected into the destination
      and the barriers tightened to the per-key tails.
    """

    __slots__ = (
        "source",
        "destination",
        "ranges",
        "flip_at",
        "state",
        "flipped_at",
        "key_ops",
        "slice_ids",
        "slice_order",
        "values",
        "tails",
        "epoch",
        "assembly",
        "resend_at",
        "injected_at",
        "_stable_ok",
    )

    def __init__(
        self, source: str, destination: str, ranges: Tuple[KeyRangeMove, ...], flip_at: float
    ) -> None:
        self.source = source
        self.destination = destination
        self.ranges = ranges
        self.flip_at = flip_at
        self.state = "waiting"
        self.flipped_at: Optional[float] = None
        self.key_ops: Dict[str, frozenset] = {}
        self.slice_ids: frozenset = frozenset()
        self.slice_order: List[OperationId] = []
        self.values: Dict[OperationId, Any] = {}
        self.tails: Dict[str, OperationId] = {}
        self.epoch = 0
        self.assembly = SliceAssembly()
        self.resend_at = 0.0
        self.injected_at: Optional[float] = None
        self._stable_ok: set = set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"_PairMigration({self.source}->{self.destination}, {self.state}, "
            f"{len(self.slice_ids)} ops)"
        )


class LiveReshard:
    """Handle (and permanent record) of one live ring change.

    Returned by :meth:`ShardedCluster.reshard` /
    :meth:`~ShardedCluster.add_shard` / :meth:`~ShardedCluster.drain_shard`;
    the caller keeps driving the shared event loop and polls :attr:`done`.
    """

    def __init__(
        self,
        old_router: ShardRouter,
        new_router: ShardRouter,
        transition: TransitionRouter,
        plan: Tuple[KeyRangeMove, ...],
        pairs: List[_PairMigration],
        joining: Tuple[str, ...],
        leaving: Tuple[str, ...],
        started_at: float,
    ) -> None:
        self.old_router = old_router
        self.new_router = new_router
        self.transition = transition
        self.plan = plan
        self.pairs = pairs
        self.joining = joining
        self.leaving = leaving
        self.started_at = started_at
        self.completed_at: Optional[float] = None
        self._hash_cache: Dict[str, int] = {}

    @property
    def done(self) -> bool:
        """Has the ring fully flipped, with every slice injected, every
        migrated operation re-answerable at its destination, and every
        drained shard retired?"""
        return self.completed_at is not None

    @property
    def transfer_rejections(self) -> int:
        """Digest-verification rejections across all legs (each healed by a
        whole-slice re-send)."""
        return sum(pair.assembly.rejections for pair in self.pairs)

    @property
    def moved_operations(self) -> int:
        """Operations migrated across all legs (known only post-flip)."""
        return sum(len(pair.slice_ids) for pair in self.pairs)

    def hash_of(self, key: str) -> int:
        point = self._hash_cache.get(key)
        if point is None:
            point = self._hash_cache[key] = stable_hash(key)
        return point

    def pending_ids_for(self, shard: str) -> set:
        """Migrated identifiers bound for *shard* whose chain injection has
        not completed — post-flip operations on moving keys may name them in
        barrier ``prev`` constraints before the destination knows them."""
        pending: set = set()
        for pair in self.pairs:
            if pair.destination == shard and pair.state != "done":
                pending |= pair.slice_ids
        return pending

    def summary(self) -> Dict[str, Any]:
        """Benchmark/reporting snapshot of this reshard."""
        return {
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "joining": list(self.joining),
            "leaving": list(self.leaving),
            "legs": len(self.pairs),
            "moved_ranges": len(self.plan),
            "moved_operations": self.moved_operations,
            "transfer_rejections": self.transfer_rejections,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "in-progress"
        return (
            f"LiveReshard({len(self.old_router.shard_ids)}->"
            f"{len(self.new_router.shard_ids)} shards, {state})"
        )


class ShardedCluster:
    """N independent simulated ESDS shards on one seeded event loop.

    Parameters
    ----------
    base_type:
        The serial data type stored under every key.
    num_shards:
        Number of shards (ignored when *router* is given).
    replicas_per_shard:
        Replicas in each shard's ESDS group (at least two).
    client_ids:
        Clients; every shard hosts a front end for each client.
    params:
        Per-shard :class:`SimulationParams`.  When omitted, the defaults are
        used with ``batch_gossip=True`` (the per-shard batched-gossip fast
        path).
    seed:
        Single seed for the whole deployment; each shard derives its own
        network RNG from it deterministically.
    compaction:
        Optional checkpoint-compaction override: a single
        :class:`CompactionPolicy` applied to every shard, or a mapping from
        shard id to policy (shards absent from the mapping keep
        ``params.compaction``).  Hot shards can compact aggressively while
        cold ones stay lazy.
    """

    def __init__(
        self,
        base_type: SerialDataType,
        num_shards: int = 2,
        replicas_per_shard: int = 3,
        client_ids: Sequence[str] = ("c0",),
        params: Optional[SimulationParams] = None,
        seed: int = 0,
        router: Optional[ShardRouter] = None,
        replica_factory: Optional[ReplicaFactory] = None,
        virtual_nodes: int = 64,
        compaction: Union[None, CompactionPolicy, Mapping[str, CompactionPolicy]] = UNSET,
        cluster_class: type = SimulatedCluster,
        config: Optional[ReplicaConfig] = None,
    ) -> None:
        self.base_type = base_type
        self.store_type = KeyedStore(base_type)
        self.params = params if params is not None else SimulationParams(batch_gossip=True)
        self.router = router or ShardRouter.for_count(num_shards, virtual_nodes=virtual_nodes)
        self.shard_ids: Tuple[str, ...] = self.router.shard_ids
        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.simulator = Simulator()

        # Replica features come from one ReplicaConfig: ``config=`` when
        # given (overriding the params' replica-level fields), else the
        # params' own slice; the legacy ``compaction`` override kwarg folds
        # into it via a deprecation shim.
        if compaction is UNSET:
            compaction = None
        if config is not None:
            if compaction is not None:
                raise ConfigurationError(
                    "ShardedCluster: pass compaction inside config=ReplicaConfig(...) "
                    "or as the legacy kwarg, not both"
                )
            self.config = config
        else:
            self.config = self.params.replica_config
            if compaction is not None:
                warnings.warn(
                    "ShardedCluster: the compaction kwarg is deprecated; pass "
                    "config=ReplicaConfig(compaction=...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                if isinstance(compaction, Mapping):
                    merged = {
                        shard: compaction.get(shard, self.config.compaction)
                        for shard in self.shard_ids
                    }
                    compaction = {s: p for s, p in merged.items() if p is not None}
                self.config = dataclasses.replace(self.config, compaction=compaction)
        self._seed = seed
        self._replicas_per_shard = replicas_per_shard
        self._replica_factory = replica_factory
        self._cluster_class = cluster_class
        self._shard_index = {shard: i for i, shard in enumerate(self.shard_ids)}

        # Front ends live under the composite per-shard client identities
        # the directory mints ids with (contiguous seqnos per shard).
        # ``cluster_class`` lets alternative harness shards ride the shared
        # event loop — e.g. :class:`repro.net.wire.WireCluster`, which pushes
        # every message through the binary codec (``--runtime=net``).
        self.shards: Dict[str, SimulatedCluster] = {
            shard: self._build_shard(shard) for shard in self.shard_ids
        }
        #: Shared routing/bookkeeping: unique identifiers, same-shard prev
        #: validation, operation-to-shard/key records.
        self.directory = KeyspaceDirectory(self.router, self.client_ids, base_type)
        #: Every submitted operation, across shards.
        self.requested: Dict[OperationId, OperationDescriptor] = {}
        self._started = False
        #: The in-progress live reshard, if any (at most one at a time).
        self._migration: Optional[LiveReshard] = None
        #: Every reshard ever performed (completed ones included) — the
        #: handoff invariant checker re-audits them all.
        self.reshards: List[LiveReshard] = []

    def _build_shard(self, shard: str) -> SimulatedCluster:
        """One shard's simulated cluster on the shared event loop (also used
        by :meth:`add_shard` when resharding live)."""
        index = self._shard_index.setdefault(shard, len(self._shard_index))
        return self._cluster_class(
            self.store_type,
            self._replicas_per_shard,
            [composite_client(c, shard) for c in self.client_ids],
            params=dataclasses.replace(self.params, replica=self.config.for_shard(shard)),
            replica_factory=self._replica_factory,
            simulator=self.simulator,
            rng=random.Random(self._seed * 7919 + index + 1),
        )

    # ===================================================================== #
    # Lifecycle                                                             #
    # ===================================================================== #

    def start(self) -> None:
        """Start every shard's gossip timers on the shared event loop."""
        if self._started:
            return
        self._started = True
        for shard in self.shards.values():
            shard.start()

    @property
    def now(self) -> float:
        """Current simulation time (shared by every shard)."""
        return self.simulator.now

    def run(self, duration: float, max_events: Optional[int] = None) -> None:
        """Advance the shared simulated time by *duration*."""
        self.start()
        self.simulator.run_until(self.simulator.now + duration, max_events)
        for shard in self.shards.values():
            shard.metrics.finished_at = self.simulator.now

    def run_until_idle(self, max_time: float = 10_000.0, max_events: int = 5_000_000) -> None:
        """Run until every submitted operation (on any shard) is answered, or
        the time budget is exhausted."""
        self.start()
        drive_until(
            self.simulator, lambda: not self.outstanding_operations(), max_time, max_events
        )
        for shard in self.shards.values():
            shard.metrics.finished_at = self.simulator.now

    def outstanding_operations(self) -> int:
        """Submitted operations not yet answered, across all shards."""
        return sum(shard.outstanding_operations() for shard in self.shards.values())

    # ===================================================================== #
    # Routing                                                               #
    # ===================================================================== #

    def shard_of(self, key: str) -> str:
        """The shard identifier owning *key*."""
        return self.router.shard_for(key)

    def shard_of_operation(self, op_id: OperationId) -> str:
        """The shard a previously submitted operation was routed to."""
        return self.directory.shard_of_operation(op_id)

    def key_of_operation(self, op_id: OperationId) -> str:
        """The key a previously submitted operation addressed."""
        return self.directory.key_of_operation(op_id)

    def last_operation_on(self, key: str) -> Optional[OperationId]:
        """The most recently submitted operation on *key* (any client)."""
        return self.directory.last_operation_on(key)

    # ===================================================================== #
    # Client interface                                                      #
    # ===================================================================== #

    def submit(
        self,
        client: str,
        key: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
        at: Optional[float] = None,
    ) -> OperationDescriptor:
        """Submit a keyed operation at simulation time *at* (default: now).

        ``prev`` identifiers must belong to operations routed to the same
        shard — always the case for same-key dependency chains.
        """
        # Reject a bad submission time before the directory records anything,
        # so a failed submit cannot leave phantom routing entries that later
        # prev=last_operation_on(key) chains would dangle from.
        if at is not None and at < self.simulator.now:
            raise ConfigurationError(
                f"cannot submit in the past (at={at}, now={self.simulator.now})"
            )
        shard, operation = self.directory.route(client, key, operator, prev, strict)
        self.start()
        self.requested[operation.id] = operation
        # During a handoff window, a post-flip operation on a moving key
        # carries barrier constraints naming migrated operations the
        # destination has not received yet; admit exactly those.
        allow: Iterable[OperationId] = ()
        if self._migration is not None:
            allow = self._migration.pending_ids_for(shard)
        self.shards[shard].submit_operation(operation, at=at, allow_unknown_prev=allow)
        return operation

    def execute(
        self,
        client: str,
        key: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
        max_time: float = 10_000.0,
    ) -> Tuple[OperationDescriptor, Any]:
        """Synchronous facade: submit, run until answered, return the value."""
        operation = self.submit(client, key, operator, prev, strict)
        shard = self.shards[self.directory.shard_of_operation(operation.id)]
        drive_until(self.simulator, lambda: operation.id in shard.responded, max_time)
        if operation.id not in shard.responded:
            raise RuntimeError(
                f"operation {operation.id} received no response within {max_time} time units"
            )
        return operation, shard.responded[operation.id]

    @property
    def responded(self) -> Dict[OperationId, Any]:
        """Values delivered to clients, across all shards.

        After a reshard, a migrated operation may be answered twice — by its
        minting shard (the dual-route source) and by the destination's
        re-answer of the injected chain; the minting shard's value is the
        one the client actually saw first, so it wins the merge.  (The two
        agree whenever the handoff invariants hold; the reshard checker
        asserts exactly that.)
        """
        merged: Dict[OperationId, Any] = {}
        for sid, shard in self.shards.items():
            for op_id, value in shard.responded.items():
                if self.directory.origin_shard(op_id, sid) == sid:
                    merged[op_id] = value
                else:
                    merged.setdefault(op_id, value)
        return merged

    @property
    def failed(self) -> Dict[OperationId, str]:
        """Operations declared unanswerable (stale-value NACK from every
        replica of their shard), across all shards (minting shard's verdict
        preferred, as in :attr:`responded`)."""
        merged: Dict[OperationId, str] = {}
        for sid, shard in self.shards.items():
            for op_id, reason in shard.failed.items():
                if self.directory.origin_shard(op_id, sid) == sid:
                    merged[op_id] = reason
                else:
                    merged.setdefault(op_id, reason)
        return merged

    def value_of(self, operation: OperationDescriptor) -> Any:
        """The value returned for *operation* (KeyError when unanswered,
        :class:`~repro.common.StaleValueError` when it failed for good)."""
        shard = self.directory.shard_of_operation(operation.id)
        cluster = self.shards[shard]
        ensure_not_stale(cluster.failed, operation.id)
        return cluster.responded[operation.id]

    # ===================================================================== #
    # Live elastic resharding                                               #
    # ===================================================================== #

    def active_reshard(self) -> Optional[LiveReshard]:
        """The in-progress reshard, or ``None``."""
        return self._migration

    def add_shard(self, shard_id: str, flip_stagger: Optional[float] = None) -> LiveReshard:
        """Grow the ring by one shard, live: see :meth:`reshard`."""
        if self._migration is not None:
            raise ConfigurationError("a reshard is already in progress")
        return self.reshard(self.router.add_shard(shard_id), flip_stagger=flip_stagger)

    def drain_shard(self, shard_id: str, flip_stagger: Optional[float] = None) -> LiveReshard:
        """Shrink the ring by one shard, live: its key ranges migrate to the
        surviving successors, and once every leg completes — and the drained
        shard has answered everything and converged — it retires (timers
        silenced, history kept readable).  See :meth:`reshard`."""
        if self._migration is not None:
            raise ConfigurationError("a reshard is already in progress")
        return self.reshard(self.router.remove_shard(shard_id), flip_stagger=flip_stagger)

    def reshard(
        self, new_router: ShardRouter, flip_stagger: Optional[float] = None
    ) -> LiveReshard:
        """Change the consistent-hash ring **under traffic**.

        The movement plan (exact key ranges changing owner) is computed from
        the ring delta and grouped into (source, destination) legs; each leg
        runs the :class:`_PairMigration` state machine independently, with
        flips staggered by *flip_stagger* (default: one gossip period) so
        the ring is genuinely mixed-ownership for a while.  Joining shards
        are built and started immediately; the routing table becomes a
        :class:`TransitionRouter` that flips per leg, and snaps to
        *new_router* when the last leg completes.

        Returns the :class:`LiveReshard` handle; keep driving the event loop
        (``run`` / ``run_until_idle``) and poll ``handle.done``.
        """
        if self._migration is not None:
            raise ConfigurationError("a reshard is already in progress")
        old = self.router
        plan = ShardRouter.movement_plan(old, new_router)
        joining = tuple(s for s in new_router.shard_ids if s not in old.shard_ids)
        leaving = tuple(s for s in old.shard_ids if s not in new_router.shard_ids)
        for sid in joining:
            if sid in self.shards:
                raise ConfigurationError(
                    f"shard id {sid!r} was retired by an earlier reshard and cannot be reused"
                )
            self.shards[sid] = self._build_shard(sid)
            if self._started:
                self.shards[sid].start()
        transition = TransitionRouter(old, new_router, plan)
        self.router = transition
        self.directory.router = transition
        self.shard_ids = transition.shard_ids
        stagger = self.params.gossip_period if flip_stagger is None else flip_stagger
        by_pair: Dict[Tuple[str, str], List[KeyRangeMove]] = {}
        for move in plan:
            by_pair.setdefault((move.source, move.destination), []).append(move)
        pairs = [
            _PairMigration(source, destination, tuple(moves), self.simulator.now + i * stagger)
            for i, ((source, destination), moves) in enumerate(sorted(by_pair.items()))
        ]
        migration = LiveReshard(
            old_router=old,
            new_router=new_router,
            transition=transition,
            plan=plan,
            pairs=pairs,
            joining=joining,
            leaving=leaving,
            started_at=self.simulator.now,
        )
        self._migration = migration
        self.reshards.append(migration)
        self.start()
        if pairs:
            self.simulator.schedule(0.0, self._migration_tick)
        else:
            self._maybe_finalize_reshard(migration)
        return migration

    def run_until_resharded(
        self,
        migration: LiveReshard,
        max_time: float = 10_000.0,
        max_events: int = 5_000_000,
    ) -> None:
        """Drive the shared event loop until *migration* completes (or the
        time/event budget runs out — e.g. a source replica stays crashed and
        the slice can never settle)."""
        self.start()
        drive_until(self.simulator, lambda: migration.done, max_time, max_events)

    def _migration_tick(self) -> None:
        migration = self._migration
        if migration is None:
            return
        for pair in migration.pairs:
            self._advance_pair(migration, pair)
        if self._maybe_finalize_reshard(migration):
            return
        self.simulator.schedule(0.5 * self.params.gossip_period, self._migration_tick)

    def _advance_pair(self, migration: LiveReshard, pair: _PairMigration) -> None:
        now = self.simulator.now
        if pair.state == "waiting" and now >= pair.flip_at:
            self._flip_pair(migration, pair)
        if pair.state == "closing" and self._pair_settled(pair):
            self._cut_slice(migration, pair)
        if pair.state == "transferring" and now >= pair.resend_at:
            self._send_slice(migration, pair)

    def _flip_pair(self, migration: LiveReshard, pair: _PairMigration) -> None:
        """Atomically flip this leg's key ranges to the destination, freeze
        the moving operation set, and install the per-key barriers.

        The slice *order* is only fixed once the source reaches stability,
        but its *membership* is frozen right here: every operation on a
        moving key was routed through the directory, and from this instant
        new operations on those keys route to the destination.  Membership
        is decided by the key's hash (not by minting shard), so histories
        that already migrated once move again intact.
        """
        for move in pair.ranges:
            migration.transition.flip(move)
        key_ops: Dict[str, List[OperationId]] = {}
        for op_id, key in self.directory.keyed_operations():
            point = migration.hash_of(key)
            if any(move.contains(point) for move in pair.ranges):
                key_ops.setdefault(key, []).append(op_id)
        pair.key_ops = {key: frozenset(ids) for key, ids in key_ops.items()}
        pair.slice_ids = frozenset(
            op_id for ids in pair.key_ops.values() for op_id in ids
        )
        for key, ids in pair.key_ops.items():
            self.directory.set_barrier(key, ids)
        pair.flipped_at = self.simulator.now
        pair.state = "closing"

    def _pair_settled(self, pair: _PairMigration) -> bool:
        """Is this leg's slice frozen — every moving operation answered (or
        failed for good) by the source, and stable at every source replica?
        Stability freezes the slice's relative order (Invariant 7.2 / 7.21);
        a crashed source replica blocks settlement until it recovers, which
        is precisely the mid-handoff crash story."""
        source = self.shards[pair.source]
        for op_id in pair.slice_ids:
            if op_id not in source.responded and op_id not in source.failed:
                return False
        for op_id in pair.slice_ids - pair._stable_ok:
            operation = source.requested[op_id]
            if all(rep.knows_stable(operation) for rep in source.replicas.values()):
                pair._stable_ok.add(op_id)
            else:
                return False
        return True

    def _cut_slice(self, migration: LiveReshard, pair: _PairMigration) -> None:
        """Cut the frozen slice: source eventual order restricted to the
        moving operations, plus the source-recorded response values."""
        source = self.shards[pair.source]
        order = [op_id for op_id in source.eventual_order() if op_id in pair.slice_ids]
        if len(order) != len(pair.slice_ids):
            missing = sorted(map(str, pair.slice_ids.difference(order)))
            raise InvariantViolation(f"reshard slice lost operations: {missing}")
        pair.slice_order = order
        pair.values = {
            op_id: source.responded[op_id] for op_id in order if op_id in source.responded
        }
        if not order:
            # Moving ranges with no history yet: ownership has flipped,
            # nothing to transfer or inject.
            pair.state = "done"
            pair.injected_at = self.simulator.now
            return
        pair.state = "transferring"
        self._send_slice(migration, pair)

    def _send_slice(self, migration: LiveReshard, pair: _PairMigration) -> None:
        """(Re-)send the whole slice in digest-verified chunks over the
        source shard's network — subject to its loss, delay and
        transfer-corruption adversaries, with byte accounting on the
        ``transfer`` kind.  Each send uses a fresh epoch; a lost or rejected
        body simply waits out ``resend_at`` and ships again."""
        source = self.shards[pair.source]
        pair.epoch += 1
        ops = [source.requested[op_id] for op_id in pair.slice_order]
        chunk_size = self.config.for_shard(pair.destination).checkpoint_chunk
        chunks = build_chunks(
            pair.source, pair.destination, ops, pair.values, chunk_size, pair.epoch
        )
        network = source.network
        now = self.simulator.now
        for chunk in chunks:
            if network.should_drop("transfer", pair.source, pair.destination):
                continue
            network.record_sent("transfer", payload_size=chunk.size_estimate())
            if network.should_corrupt_transfer(now):
                chunk = tamper_chunk(chunk)
            delay = network.delay_for("transfer", now, pair.source, pair.destination)
            self.simulator.schedule(
                delay, lambda c=chunk: self._deliver_migration_chunk(migration, pair, c)
            )
        pair.resend_at = now + max(4 * self.params.dg, 2 * self.params.gossip_period)

    def _deliver_migration_chunk(
        self, migration: LiveReshard, pair: _PairMigration, chunk
    ) -> None:
        if pair.state != "transferring":
            return  # late duplicate of an already-injected slice
        rejected_before = pair.assembly.rejections
        result = pair.assembly.receive(chunk)
        if result is None:
            if pair.assembly.rejections > rejected_before:
                # Digest mismatch: heal by re-pull — re-send promptly under
                # a fresh epoch instead of waiting out the loss timeout.
                pair.resend_at = self.simulator.now
            return
        ops, _values = result
        self._inject_slice(migration, pair, ops)

    def _inject_slice(
        self, migration: LiveReshard, pair: _PairMigration, ops
    ) -> None:
        """Inject the verified slice into the destination as one prev-chain
        of ordinary operations, then tighten each moved key's barrier from
        the frozen slice-set to its single migrated tail.

        Operations the destination already holds (a history migrating back
        to a former owner) are skipped; the per-key chain links installed by
        :func:`chain_ops` survive those skips, preserving exactly the
        per-key order the response values depend on."""
        destination = self.shards[pair.destination]
        for operation in chain_ops(ops, key_of=self.directory.key_of_operation):
            if operation.id not in destination.requested:
                destination.inject_operation(operation)
        tails: Dict[str, OperationId] = {}
        for op_id in pair.slice_order:
            tails[self.directory.key_of_operation(op_id)] = op_id
        pair.tails = tails
        for key, tail in tails.items():
            self.directory.set_barrier(key, frozenset({tail}))
        pair.injected_at = self.simulator.now
        pair.state = "done"

    def _maybe_finalize_reshard(self, migration: LiveReshard) -> bool:
        """Complete the reshard once every leg is done, every migrated
        operation is re-answerable at its destination (the catch-up window),
        and every leaving shard has drained and converged — only then are
        the drained shards retired and the ring snapped to the new router."""
        if any(pair.state != "done" for pair in migration.pairs):
            return False
        for pair in migration.pairs:
            destination = self.shards[pair.destination]
            for op_id in pair.slice_order:
                if op_id not in destination.responded and op_id not in destination.failed:
                    return False
        for sid in migration.leaving:
            source = self.shards[sid]
            # Converge *before* silencing gossip: a retired shard can no
            # longer make progress, so stopping early would wedge
            # ``fully_converged`` forever.
            if source.outstanding_operations() or not source.fully_converged():
                return False
        for sid in migration.leaving:
            self.shards[sid].stop()
        self.router = migration.new_router
        self.directory.router = migration.new_router
        self.shard_ids = migration.new_router.shard_ids
        migration.completed_at = self.simulator.now
        self._migration = None
        return True

    def check_reshard_handoffs(self) -> None:
        """Audit every completed migration leg: each migrated key's history
        must appear in source order at the destination, post-flip operations
        must sit after their key's migrated tail (the barrier held), and
        every re-answered migrated operation must equal the source's
        original response (Theorem 5.8 response equivalence across the
        handoff).  The order audit runs **per key** — that is the order the
        keyed store's values depend on; cross-key interleavings within a
        slice are unconstrained once a history returns to a former owner,
        where already-present operations keep their original positions."""
        from repro.verification.invariants import check_reshard_handoff

        for migration in self.reshards:
            for pair in migration.pairs:
                if pair.state != "done" or not pair.slice_order:
                    continue
                destination = self.shards[pair.destination]
                # The audit compares against the destination's eventual
                # order, which is only frozen at quiescence — mid-window the
                # tentative min-label order may still shuffle (exactly like
                # ``check_traces``, this is an eventual-order check).
                if not destination.fully_converged():
                    continue
                post_flip: Dict[OperationId, OperationId] = {}
                for op_id, key in self.directory.keyed_operations():
                    tail = pair.tails.get(key)
                    if (
                        tail is not None
                        and op_id not in pair.slice_ids
                        and self.directory.origin_shard(op_id) == pair.destination
                    ):
                        # Minted at the destination and not part of the frozen
                        # slice: necessarily submitted after the flip (slice
                        # membership froze every pre-flip operation).
                        post_flip[op_id] = tail
                dest_order = destination.eventual_order()
                by_key: Dict[str, List[OperationId]] = {}
                for op_id in pair.slice_order:
                    by_key.setdefault(
                        self.directory.key_of_operation(op_id), []
                    ).append(op_id)
                for key, key_order in by_key.items():
                    key_post_flip = {
                        op_id: tail
                        for op_id, tail in post_flip.items()
                        if self.directory.key_of_operation(op_id) == key
                    }
                    check_reshard_handoff(
                        key_order,
                        dest_order,
                        key_post_flip,
                        context=f"{pair.source}->{pair.destination} key={key}",
                    )
                for op_id in pair.slice_order:
                    original = pair.values.get(op_id)
                    re_answer = destination.responded.get(op_id)
                    if (
                        op_id in pair.values
                        and op_id in destination.responded
                        and original != re_answer
                    ):
                        raise InvariantViolation(
                            f"reshard handoff {pair.source}->{pair.destination}: "
                            f"destination re-answered {op_id} with {re_answer!r} "
                            f"but the source responded {original!r}"
                        )

    # ===================================================================== #
    # Metrics and verification views                                        #
    # ===================================================================== #

    @property
    def metrics(self) -> PerShardMetrics:
        """Per-shard metric collectors with aggregate summaries."""
        return PerShardMetrics({sid: shard.metrics for sid, shard in self.shards.items()})

    def eventual_orders(self) -> Dict[str, List[OperationId]]:
        """Each shard's eventual total order (by system-wide minimum label)."""
        return {sid: shard.eventual_order() for sid, shard in self.shards.items()}

    def fully_converged(self) -> bool:
        """Has every shard stabilized every one of its operations?"""
        return all(shard.fully_converged() for shard in self.shards.values())

    def check_traces(self) -> None:
        """Check the Theorem 5.8 oracle on every shard's recorded trace."""
        from repro.verification.serializability import check_recorded_trace

        for shard in self.shards.values():
            check_recorded_trace(
                shard.data_type, shard.trace, witness=shard.eventual_order()
            )

    def check_invariants(self) -> None:
        """Run the Section 7/8 invariant checker on every shard's
        :meth:`~repro.sim.cluster.SimulatedCluster.algorithm_view` (faithful
        at network quiescence)."""
        from repro.verification.invariants import AlgorithmInvariantChecker

        for shard in self.shards.values():
            AlgorithmInvariantChecker(shard.algorithm_view()).check_all()
        self.check_reshard_handoffs()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCluster({self.store_type.name}, shards={len(self.shard_ids)}, "
            f"clients={len(self.client_ids)}, t={self.simulator.now:.1f})"
        )
