"""Network model for the simulator.

Delays follow the Section 9.1 parameters: ``df`` bounds front-end <-> replica
delivery, ``dg`` bounds replica <-> replica (gossip) delivery.  Deliveries may
optionally be jittered below the bound (the bound is an upper bound in the
paper), dropped, or delayed by fault windows (used for the Theorem 9.4
recovery experiment E4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Set


@dataclass
class NetworkModel:
    """Delay / loss configuration.

    ``df`` and ``dg`` are the *maximum* delays; with ``jitter`` in ``(0, 1]``
    the actual delay is drawn uniformly from ``[(1-jitter)*d, d]``.  Loss is
    applied per message.  ``partition`` is a set of replica identifiers that
    are currently unreachable (messages to or from them are dropped).
    """

    df: float = 1.0
    dg: float = 1.0
    jitter: float = 0.0
    loss_probability: float = 0.0
    #: Multiplier applied to delays during a delay-spike fault window.
    spike_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.df < 0 or self.dg < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be within [0, 1)")


@dataclass
class MessageCounters:
    """Per-category message accounting for the overhead experiments
    (E8/E11).  ``pull`` / ``transfer`` count the advert/pull catch-up
    control plane; ``transfer_payload`` accumulates the checkpoint-body
    bytes actually shipped on demand (zero in steady state)."""

    request: int = 0
    response: int = 0
    gossip: int = 0
    pull: int = 0
    transfer: int = 0
    dropped: int = 0
    gossip_payload: int = 0
    transfer_payload: int = 0

    def total(self) -> int:
        return self.request + self.response + self.gossip + self.pull + self.transfer


class SimulatedNetwork:
    """Computes delays and applies loss/partition policy for the cluster."""

    def __init__(self, model: NetworkModel, rng: random.Random) -> None:
        self.model = model
        self.rng = rng
        self.counters = MessageCounters()
        #: Replica / client identifiers currently partitioned away.
        self.partitioned: Set[str] = set()
        #: When > simulator time, delays are multiplied by ``spike_factor``.
        self._spike_until: float = float("-inf")

    # -- fault control ---------------------------------------------------------

    def partition(self, node: str) -> None:
        """Disconnect *node*: messages to or from it are dropped."""
        self.partitioned.add(node)

    def heal(self, node: str) -> None:
        """Reconnect *node*."""
        self.partitioned.discard(node)

    def start_delay_spike(self, until: float) -> None:
        """Multiply delays by ``spike_factor`` until simulation time *until*."""
        self._spike_until = until

    # -- delay / loss decisions ------------------------------------------------

    def _base_delay(self, kind: str) -> float:
        bound = self.model.df if kind in ("request", "response") else self.model.dg
        if self.model.jitter > 0:
            low = (1.0 - self.model.jitter) * bound
            return self.rng.uniform(low, bound)
        return bound

    def delay_for(self, kind: str, now: float) -> float:
        """The delivery delay for a message of the given kind sent at *now*."""
        delay = self._base_delay(kind)
        if now < self._spike_until:
            delay *= max(self.model.spike_factor, 1.0)
        return delay

    def should_drop(self, kind: str, source: str, destination: str) -> bool:
        """Loss and partition policy."""
        if source in self.partitioned or destination in self.partitioned:
            self.counters.dropped += 1
            return True
        if self.model.loss_probability > 0 and self.rng.random() < self.model.loss_probability:
            self.counters.dropped += 1
            return True
        return False

    def record_sent(self, kind: str, payload_size: int = 0) -> None:
        if kind == "request":
            self.counters.request += 1
        elif kind == "response":
            self.counters.response += 1
        elif kind == "gossip":
            self.counters.gossip += 1
            self.counters.gossip_payload += payload_size
        elif kind == "pull":
            self.counters.pull += 1
        elif kind == "transfer":
            self.counters.transfer += 1
            self.counters.transfer_payload += payload_size
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown message kind {kind!r}")
