"""Network model for the simulator.

Delays follow the Section 9.1 parameters: ``df`` bounds front-end <-> replica
delivery, ``dg`` bounds replica <-> replica (gossip) delivery.  Deliveries may
optionally be jittered below the bound (the bound is an upper bound in the
paper), dropped, or delayed by fault windows (used for the Theorem 9.4
recovery experiment E4).

Beyond the symmetric partition / delay-spike model, the network supports the
richer adversaries of the conformance suite: *directed* link partitions (A
hears B but not vice versa), per-node straggler factors (a persistently slow
replica), message duplication windows, and checkpoint-transfer corruption
windows.  Fault-window randomness (duplicate / corrupt coin flips) is drawn
from a dedicated ``fault_rng`` stream so that enabling an adversary never
perturbs the primary delay/loss stream — a cluster with a duplication window
sees exactly the same primary deliveries as one without, which is what makes
the duplicate-idempotence twin tests (and the conformance vectors) exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

#: Seed of the auxiliary fault stream.  A fixed constant: fault coins must be
#: reproducible per cluster without consuming draws from the primary rng.
FAULT_STREAM_SEED = 0x5E5D5


@dataclass
class NetworkModel:
    """Delay / loss configuration.

    ``df`` and ``dg`` are the *maximum* delays; with ``jitter`` in ``(0, 1]``
    the actual delay is drawn uniformly from ``[(1-jitter)*d, d]``.  Loss is
    applied per message.  ``partition`` is a set of replica identifiers that
    are currently unreachable (messages to or from them are dropped).
    """

    df: float = 1.0
    dg: float = 1.0
    jitter: float = 0.0
    loss_probability: float = 0.0
    #: Multiplier applied to delays during a delay-spike fault window.
    spike_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.df < 0 or self.dg < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be within [0, 1)")


@dataclass
class MessageCounters:
    """Per-category message accounting for the overhead experiments
    (E8/E11).  ``pull`` / ``transfer`` count the advert/pull catch-up
    control plane; ``transfer_payload`` accumulates the checkpoint-body
    bytes actually shipped on demand (zero in steady state).

    ``duplicated`` counts *extra* deliveries injected by a duplication
    window — deliberately excluded from the per-kind send counters so the
    overhead metrics stay comparable with and without the adversary.
    ``corrupted`` counts transfer chunks tampered in flight."""

    request: int = 0
    response: int = 0
    gossip: int = 0
    pull: int = 0
    transfer: int = 0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    gossip_payload: int = 0
    transfer_payload: int = 0

    def total(self) -> int:
        return self.request + self.response + self.gossip + self.pull + self.transfer


class SimulatedNetwork:
    """Computes delays and applies loss/partition policy for the cluster."""

    def __init__(self, model: NetworkModel, rng: random.Random) -> None:
        self.model = model
        self.rng = rng
        self.counters = MessageCounters()
        #: Replica / client identifiers currently partitioned away.
        self.partitioned: Set[str] = set()
        #: Directed ``(source, destination)`` pairs currently severed —
        #: the asymmetric-partition adversary (A hears B but not vice versa).
        self.partitioned_links: Set[Tuple[str, str]] = set()
        #: Per-node persistent delay multipliers (straggler replicas);
        #: messages to *or* from a straggler are slowed by its factor.
        self.stragglers: Dict[str, float] = {}
        #: When > simulator time, delays are multiplied by ``spike_factor``.
        self._spike_until: float = float("-inf")
        #: Duplication window: until when / with what per-message probability.
        self._duplicate_until: float = float("-inf")
        self._duplicate_probability: float = 0.0
        #: Corruption window for checkpoint transfers.
        self._corrupt_until: float = float("-inf")
        self._corrupt_probability: float = 0.0
        #: Per-node local-clock offsets (the clock-skew adversary): a node's
        #: local clock reads ``now + skew``.  Only message *timestamps* are
        #: affected — delivery scheduling always uses true simulated time, and
        #: the algorithm itself never reads clocks (its correctness is
        #: asynchronous), so skew is observable but never schedule-perturbing.
        self.clock_skews: Dict[str, float] = {}
        #: Auxiliary stream for fault-window coin flips (see module docstring).
        self.fault_rng = random.Random(FAULT_STREAM_SEED)

    # -- fault control ---------------------------------------------------------

    def partition(self, node: str) -> None:
        """Disconnect *node*: messages to or from it are dropped."""
        self.partitioned.add(node)

    def heal(self, node: str) -> None:
        """Reconnect *node*."""
        self.partitioned.discard(node)

    def partition_link(self, source: str, destination: str) -> None:
        """Sever the directed link ``source -> destination`` only; traffic in
        the other direction still flows (asymmetric partition)."""
        self.partitioned_links.add((source, destination))

    def heal_link(self, source: str, destination: str) -> None:
        """Restore the directed link ``source -> destination``."""
        self.partitioned_links.discard((source, destination))

    def set_straggler(self, node: str, factor: float) -> None:
        """Multiply delays of messages to or from *node* by *factor*."""
        if factor < 1.0:
            raise ValueError("straggler factor must be >= 1 (never speeds up)")
        self.stragglers[node] = factor

    def clear_straggler(self, node: str) -> None:
        """Restore *node* to normal speed."""
        self.stragglers.pop(node, None)

    def start_delay_spike(self, until: float) -> None:
        """Multiply delays by ``spike_factor`` until simulation time *until*."""
        self._spike_until = until

    def start_duplication(self, until: float, probability: float) -> None:
        """Deliver a second copy of each message with *probability* until
        simulation time *until*."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("duplication probability must be within [0, 1]")
        self._duplicate_until = until
        self._duplicate_probability = probability

    def start_corruption(self, until: float, probability: float) -> None:
        """Flip bytes in checkpoint-transfer chunks with *probability* until
        simulation time *until*."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("corruption probability must be within [0, 1]")
        self._corrupt_until = until
        self._corrupt_probability = probability

    def set_clock_skew(self, node: str, offset: float) -> None:
        """Skew *node*'s local clock by *offset* time units (either sign)."""
        self.clock_skews[node] = offset

    def clear_clock_skew(self, node: str) -> None:
        """Re-synchronize *node*'s local clock with simulated time."""
        self.clock_skews.pop(node, None)

    def local_clock(self, node: str, now: float) -> float:
        """What *node*'s local clock reads at true simulated time *now*."""
        return now + self.clock_skews.get(node, 0.0)

    # -- delay / loss decisions ------------------------------------------------

    def _base_delay(self, kind: str, rng: random.Random) -> float:
        bound = self.model.df if kind in ("request", "response") else self.model.dg
        if self.model.jitter > 0:
            low = (1.0 - self.model.jitter) * bound
            return rng.uniform(low, bound)
        return bound

    def delay_for(
        self,
        kind: str,
        now: float,
        source: Optional[str] = None,
        destination: Optional[str] = None,
        _rng: Optional[random.Random] = None,
    ) -> float:
        """The delivery delay for a message of the given kind sent at *now*."""
        delay = self._base_delay(kind, self.rng if _rng is None else _rng)
        if now < self._spike_until:
            delay *= max(self.model.spike_factor, 1.0)
        for node in (source, destination):
            if node is not None and node in self.stragglers:
                delay *= self.stragglers[node]
        return delay

    def should_drop(self, kind: str, source: str, destination: str) -> bool:
        """Loss and partition policy."""
        if source in self.partitioned or destination in self.partitioned:
            self.counters.dropped += 1
            return True
        if (source, destination) in self.partitioned_links:
            self.counters.dropped += 1
            return True
        if self.model.loss_probability > 0 and self.rng.random() < self.model.loss_probability:
            self.counters.dropped += 1
            return True
        return False

    def maybe_duplicate(
        self,
        kind: str,
        now: float,
        source: Optional[str] = None,
        destination: Optional[str] = None,
    ) -> Optional[float]:
        """Inside an active duplication window, decide whether this send gets
        a second delivery; returns the extra copy's delay, or ``None``.

        Both the coin flip and the duplicate's jitter come from the fault
        stream, so the primary delivery schedule is untouched.  The cluster
        must reuse the already-built message for the extra delivery — in
        particular a duplicated delta-gossip message carries the *same*
        seqno, which the receiver's cumulative-ack stream deduplicates.
        """
        if now >= self._duplicate_until or self._duplicate_probability <= 0.0:
            return None
        if self.fault_rng.random() >= self._duplicate_probability:
            return None
        self.counters.duplicated += 1
        return self.delay_for(kind, now, source, destination, _rng=self.fault_rng)

    def should_corrupt_transfer(self, now: float) -> bool:
        """Inside an active corruption window, decide whether this transfer
        chunk gets tampered in flight (coin from the fault stream)."""
        if now >= self._corrupt_until or self._corrupt_probability <= 0.0:
            return False
        if self.fault_rng.random() >= self._corrupt_probability:
            return False
        self.counters.corrupted += 1
        return True

    def record_sent(self, kind: str, payload_size: int = 0) -> None:
        if kind == "request":
            self.counters.request += 1
        elif kind == "response":
            self.counters.response += 1
        elif kind == "gossip":
            self.counters.gossip += 1
            self.counters.gossip_payload += payload_size
        elif kind == "pull":
            self.counters.pull += 1
        elif kind == "transfer":
            self.counters.transfer += 1
            self.counters.transfer_payload += payload_size
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown message kind {kind!r}")
