"""Latency, throughput and stabilization metrics for simulated runs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.common import OperationId
from repro.core.operations import OperationDescriptor


def classify_operation(operation: OperationDescriptor) -> str:
    """The three operation classes of Theorem 9.3."""
    if operation.strict:
        return "strict"
    if operation.prev:
        return "nonstrict_with_prev"
    return "nonstrict_no_prev"


@dataclass
class LatencyRecord:
    """One completed operation."""

    operation: OperationDescriptor
    request_time: float
    response_time: float
    value: Any = None

    @property
    def latency(self) -> float:
        return self.response_time - self.request_time

    @property
    def category(self) -> str:
        return classify_operation(self.operation)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return math.nan
    index = min(len(sorted_values) - 1, max(0, int(math.ceil(fraction * len(sorted_values))) - 1))
    return sorted_values[index]


@dataclass
class LatencySummary:
    """Aggregate statistics over a set of latency records."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @classmethod
    def from_latencies(cls, latencies: Iterable[float]) -> "LatencySummary":
        values = sorted(latencies)
        if not values:
            return cls(count=0, mean=math.nan, minimum=math.nan, maximum=math.nan,
                       p50=math.nan, p95=math.nan)
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            minimum=values[0],
            maximum=values[-1],
            p50=_percentile(values, 0.50),
            p95=_percentile(values, 0.95),
        )


class MetricsCollector:
    """Collects per-operation and system-wide measurements during a run."""

    def __init__(self) -> None:
        self.records: List[LatencyRecord] = []
        self._request_times: Dict[OperationId, float] = {}
        #: Simulation time at which each operation was first observed stable
        #: at every replica (filled in by the cluster's gossip handler).
        self.stabilization_times: Dict[OperationId, float] = {}
        self.started_at: float = 0.0
        self.finished_at: float = 0.0

    # -- recording -------------------------------------------------------------

    def record_request(self, operation: OperationDescriptor, time: float) -> None:
        self._request_times[operation.id] = time

    def record_response(self, operation: OperationDescriptor, value: Any, time: float) -> None:
        request_time = self._request_times.get(operation.id)
        if request_time is None:
            return
        self.records.append(
            LatencyRecord(
                operation=operation,
                request_time=request_time,
                response_time=time,
                value=value,
            )
        )

    def record_stabilization(self, op_id: OperationId, time: float) -> None:
        self.stabilization_times.setdefault(op_id, time)

    def request_time_of(self, op_id: OperationId) -> Optional[float]:
        return self._request_times.get(op_id)

    # -- summaries ---------------------------------------------------------------

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def outstanding(self) -> int:
        answered = {record.operation.id for record in self.records}
        return len(set(self._request_times) - answered)

    def latency_summary(self, category: Optional[str] = None) -> LatencySummary:
        latencies = [
            record.latency
            for record in self.records
            if category is None or record.category == category
        ]
        return LatencySummary.from_latencies(latencies)

    def throughput(self, duration: Optional[float] = None) -> float:
        """Completed operations per unit simulated time."""
        span = duration if duration is not None else (self.finished_at - self.started_at)
        if span <= 0:
            return 0.0
        return self.completed / span

    def max_latency_by_category(self) -> Dict[str, float]:
        result: Dict[str, float] = {}
        for record in self.records:
            result[record.category] = max(result.get(record.category, 0.0), record.latency)
        return result

    def stabilization_summary(self) -> LatencySummary:
        """Time from request to system-wide stability."""
        values = []
        for op_id, stable_time in self.stabilization_times.items():
            request_time = self._request_times.get(op_id)
            if request_time is not None:
                values.append(stable_time - request_time)
        return LatencySummary.from_latencies(values)
