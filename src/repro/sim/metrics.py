"""Latency, throughput and stabilization metrics for simulated runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.common import MetricsError, OperationId
from repro.core.operations import OperationDescriptor


def classify_operation(operation: OperationDescriptor) -> str:
    """The three operation classes of Theorem 9.3."""
    if operation.strict:
        return "strict"
    if operation.prev:
        return "nonstrict_with_prev"
    return "nonstrict_no_prev"


@dataclass
class LatencyRecord:
    """One completed operation."""

    operation: OperationDescriptor
    request_time: float
    response_time: float
    value: Any = None

    @property
    def latency(self) -> float:
        return self.response_time - self.request_time

    @property
    def category(self) -> str:
        return classify_operation(self.operation)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return math.nan
    index = min(len(sorted_values) - 1, max(0, int(math.ceil(fraction * len(sorted_values))) - 1))
    return sorted_values[index]


@dataclass
class LatencySummary:
    """Aggregate statistics over a set of latency records."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @classmethod
    def from_latencies(cls, latencies: Iterable[float]) -> "LatencySummary":
        values = sorted(latencies)
        if not values:
            return cls(count=0, mean=math.nan, minimum=math.nan, maximum=math.nan,
                       p50=math.nan, p95=math.nan)
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            minimum=values[0],
            maximum=values[-1],
            p50=_percentile(values, 0.50),
            p95=_percentile(values, 0.95),
        )


class MetricsCollector:
    """Collects per-operation and system-wide measurements during a run."""

    def __init__(self) -> None:
        self.records: List[LatencyRecord] = []
        self._request_times: Dict[OperationId, float] = {}
        #: Simulation time at which each operation was first observed stable
        #: at every replica (filled in by the cluster's gossip handler).
        self.stabilization_times: Dict[OperationId, float] = {}
        #: Peak / latest per-replica tracked-operation counts (the memory
        #: quantity checkpoint compaction bounds), sampled by the cluster at
        #: gossip ticks and after compactions.
        self.tracked_ops_peak: Dict[str, int] = {}
        self.tracked_ops_last: Dict[str, int] = {}
        self.started_at: float = 0.0
        self.finished_at: float = 0.0

    # -- recording -------------------------------------------------------------

    def record_request(self, operation: OperationDescriptor, time: float) -> None:
        self._request_times[operation.id] = time

    def record_response(self, operation: OperationDescriptor, value: Any, time: float) -> None:
        request_time = self._request_times.get(operation.id)
        if request_time is None:
            return
        self.records.append(
            LatencyRecord(
                operation=operation,
                request_time=request_time,
                response_time=time,
                value=value,
            )
        )

    def record_stabilization(self, op_id: OperationId, time: float) -> None:
        self.stabilization_times.setdefault(op_id, time)

    def record_tracked_ops(self, replica_id: str, count: int) -> None:
        """Sample one replica's tracked-operation count (state-size metric)."""
        self.tracked_ops_last[replica_id] = count
        if count > self.tracked_ops_peak.get(replica_id, 0):
            self.tracked_ops_peak[replica_id] = count

    def request_time_of(self, op_id: OperationId) -> Optional[float]:
        return self._request_times.get(op_id)

    # -- summaries ---------------------------------------------------------------

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def outstanding(self) -> int:
        answered = {record.operation.id for record in self.records}
        return len(set(self._request_times) - answered)

    def latency_summary(self, category: Optional[str] = None) -> LatencySummary:
        latencies = [
            record.latency
            for record in self.records
            if category is None or record.category == category
        ]
        return LatencySummary.from_latencies(latencies)

    def throughput(self, duration: Optional[float] = None) -> float:
        """Completed operations per unit simulated time."""
        span = duration if duration is not None else (self.finished_at - self.started_at)
        if span <= 0:
            return 0.0
        return self.completed / span

    def max_latency_by_category(self) -> Dict[str, float]:
        result: Dict[str, float] = {}
        for record in self.records:
            result[record.category] = max(result.get(record.category, 0.0), record.latency)
        return result

    def stabilization_summary(self) -> LatencySummary:
        """Time from request to system-wide stability."""
        values = []
        for op_id, stable_time in self.stabilization_times.items():
            request_time = self._request_times.get(op_id)
            if request_time is not None:
                values.append(stable_time - request_time)
        return LatencySummary.from_latencies(values)

    def peak_tracked_ops(self) -> int:
        """The largest tracked-operation count any replica reached (0 when
        state sampling never ran)."""
        return max(self.tracked_ops_peak.values(), default=0)


class PerShardMetrics:
    """Aggregates the per-shard :class:`MetricsCollector` instances of a
    sharded deployment into whole-service summaries plus per-shard
    breakdowns (the load-balance view benchmark E9 reports)."""

    def __init__(self, collectors: Dict[str, MetricsCollector]) -> None:
        if not collectors:
            raise ValueError("PerShardMetrics needs at least one collector")
        self.collectors = dict(collectors)

    # -- whole-service summaries ---------------------------------------------

    @property
    def completed(self) -> int:
        """Completed operations across every shard."""
        return sum(collector.completed for collector in self.collectors.values())

    @property
    def outstanding(self) -> int:
        """Unanswered operations across every shard."""
        return sum(collector.outstanding for collector in self.collectors.values())

    def latency_summary(
        self, *, shard: Optional[str] = None, category: Optional[str] = None
    ) -> LatencySummary:
        """Latency statistics over one shard or (default) all of them.

        Keyword-only on purpose: the single-cluster ``latency_summary`` takes
        a *category* first, so a positional string here would silently filter
        the wrong axis.
        """
        if shard is not None and shard not in self.collectors:
            raise MetricsError(
                f"unknown shard {shard!r}; shards are {sorted(self.collectors)} "
                f"(pass category=... to filter by operation class)"
            )
        collectors = (
            [self.collectors[shard]] if shard is not None else list(self.collectors.values())
        )
        latencies = [
            record.latency
            for collector in collectors
            for record in collector.records
            if category is None or record.category == category
        ]
        return LatencySummary.from_latencies(latencies)

    def throughput(self, duration: float) -> float:
        """Total committed-ops throughput over *duration*."""
        if duration <= 0:
            return 0.0
        return self.completed / duration

    # -- per-shard breakdowns --------------------------------------------------

    def completed_by_shard(self) -> Dict[str, int]:
        return {sid: collector.completed for sid, collector in self.collectors.items()}

    def throughput_by_shard(self, duration: float) -> Dict[str, float]:
        if duration <= 0:
            return {sid: 0.0 for sid in self.collectors}
        return {
            sid: collector.completed / duration
            for sid, collector in self.collectors.items()
        }

    def imbalance(self) -> float:
        """Peak-to-mean ratio of per-shard completed counts (1.0 = perfectly
        balanced; rises with key skew).  0.0 when nothing completed."""
        counts = list(self.completed_by_shard().values())
        total = sum(counts)
        if total == 0:
            return 0.0
        mean = total / len(counts)
        return max(counts) / mean

    def peak_tracked_ops(self) -> int:
        """Largest tracked-operation count any replica of any shard reached."""
        return max(
            (collector.peak_tracked_ops() for collector in self.collectors.values()),
            default=0,
        )

    def peak_tracked_ops_by_shard(self) -> Dict[str, int]:
        return {
            sid: collector.peak_tracked_ops() for sid, collector in self.collectors.items()
        }
