"""Fault schedules for the simulator (Section 9.3).

The paper's fault-tolerance claims are of two kinds: *safety* is unaffected
by message loss, duplication, reordering and crashes (with the stable-storage
caveat for locally generated labels), and *performance* recovers once the
timing assumptions hold again (Theorem 9.4).  The fault classes below inject
exactly those disturbances into a :class:`~repro.sim.cluster.SimulatedCluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.cluster import SimulatedCluster


@dataclass
class ReplicaCrash:
    """Crash a replica at ``at`` and (optionally) recover it at ``recover_at``."""

    replica: str
    at: float
    recover_at: Optional[float] = None
    volatile_memory: bool = True

    def install(self, cluster: SimulatedCluster) -> None:
        cluster.simulator.schedule_at(
            self.at, lambda: cluster.crash_replica(self.replica, self.volatile_memory)
        )
        if self.recover_at is not None:
            if self.recover_at <= self.at:
                raise ValueError("recover_at must come after the crash time")
            cluster.simulator.schedule_at(
                self.recover_at, lambda: cluster.recover_replica(self.replica)
            )

    def end_time(self) -> float:
        return self.recover_at if self.recover_at is not None else self.at


@dataclass
class GossipOutage:
    """Partition a replica away from gossip during ``[start, end)``.

    Messages to and from the replica are dropped by the network, which is how
    the paper models an unreachable or slow replica — indistinguishable from
    message delay, so safety is unaffected.
    """

    replica: str
    start: float
    end: float

    def install(self, cluster: SimulatedCluster) -> None:
        if self.end <= self.start:
            raise ValueError("outage end must come after its start")
        cluster.simulator.schedule_at(
            self.start, lambda: cluster.network.partition(self.replica)
        )
        cluster.simulator.schedule_at(self.end, lambda: cluster.network.heal(self.replica))

    def end_time(self) -> float:
        return self.end


@dataclass
class DelaySpike:
    """Multiply message delays by the network's ``spike_factor`` during
    ``[start, end)`` — a period in which the timing assumptions of
    Section 9.1 do not hold."""

    start: float
    end: float

    def install(self, cluster: SimulatedCluster) -> None:
        if self.end <= self.start:
            raise ValueError("spike end must come after its start")
        cluster.simulator.schedule_at(
            self.start, lambda: cluster.network.start_delay_spike(self.end)
        )

    def end_time(self) -> float:
        return self.end


@dataclass
class FaultSchedule:
    """A collection of faults to install on a cluster before running it."""

    faults: List = field(default_factory=list)

    def add(self, fault) -> "FaultSchedule":
        self.faults.append(fault)
        return self

    def install(self, cluster: SimulatedCluster) -> None:
        cluster.start()
        for fault in self.faults:
            fault.install(cluster)

    def last_fault_time(self) -> float:
        """The time after which the timing assumptions hold again (the ``t``
        of Theorem 9.4)."""
        return max((fault.end_time() for fault in self.faults), default=0.0)
