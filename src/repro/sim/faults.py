"""Fault schedules for the simulator (Section 9.3).

The paper's fault-tolerance claims are of two kinds: *safety* is unaffected
by message loss, duplication, reordering and crashes (with the stable-storage
caveat for locally generated labels), and *performance* recovers once the
timing assumptions hold again (Theorem 9.4).  The fault classes below inject
exactly those disturbances into a :class:`~repro.sim.cluster.SimulatedCluster`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.cluster import SimulatedCluster


@dataclass
class ReplicaCrash:
    """Crash a replica at ``at`` and (optionally) recover it at ``recover_at``."""

    replica: str
    at: float
    recover_at: Optional[float] = None
    volatile_memory: bool = True

    def install(self, cluster: SimulatedCluster) -> None:
        cluster.simulator.schedule_at(
            self.at, lambda: cluster.crash_replica(self.replica, self.volatile_memory)
        )
        if self.recover_at is not None:
            if self.recover_at <= self.at:
                raise ValueError("recover_at must come after the crash time")
            cluster.simulator.schedule_at(
                self.recover_at, lambda: cluster.recover_replica(self.replica)
            )

    def end_time(self) -> float:
        return self.recover_at if self.recover_at is not None else self.at


@dataclass
class GossipOutage:
    """Partition a replica away from gossip during ``[start, end)``.

    Messages to and from the replica are dropped by the network, which is how
    the paper models an unreachable or slow replica — indistinguishable from
    message delay, so safety is unaffected.
    """

    replica: str
    start: float
    end: float

    def install(self, cluster: SimulatedCluster) -> None:
        if self.end <= self.start:
            raise ValueError("outage end must come after its start")
        cluster.simulator.schedule_at(
            self.start, lambda: cluster.network.partition(self.replica)
        )
        cluster.simulator.schedule_at(self.end, lambda: cluster.network.heal(self.replica))

    def end_time(self) -> float:
        return self.end


@dataclass
class DelaySpike:
    """Multiply message delays by the network's ``spike_factor`` during
    ``[start, end)`` — a period in which the timing assumptions of
    Section 9.1 do not hold."""

    start: float
    end: float

    def install(self, cluster: SimulatedCluster) -> None:
        if self.end <= self.start:
            raise ValueError("spike end must come after its start")
        cluster.simulator.schedule_at(
            self.start, lambda: cluster.network.start_delay_spike(self.end)
        )

    def end_time(self) -> float:
        return self.end


@dataclass
class AsymmetricPartition:
    """Sever the *directed* link ``source -> destination`` during
    ``[start, end)``: the destination stops hearing the source, while
    traffic the other way still flows.

    The paper's channels are unidirectional and independently unreliable,
    so a one-way outage is within the model — safety must hold even when
    A hears B but B never hears A (gossip knowledge then spreads only
    through third parties)."""

    source: str
    destination: str
    start: float
    end: float

    def install(self, cluster: SimulatedCluster) -> None:
        if self.end <= self.start:
            raise ValueError("partition end must come after its start")
        cluster.simulator.schedule_at(
            self.start,
            lambda: cluster.network.partition_link(self.source, self.destination),
        )
        cluster.simulator.schedule_at(
            self.end, lambda: cluster.network.heal_link(self.source, self.destination)
        )

    def end_time(self) -> float:
        return self.end


@dataclass
class StragglerReplica:
    """Multiply message delays to and from one replica by ``factor`` during
    ``[start, end)`` — a persistently slow node rather than a global spike.

    Unlike :class:`DelaySpike` this is per-node and ignores the network's
    ``spike_factor``; the two compose multiplicatively when both are
    active."""

    replica: str
    factor: float
    start: float
    end: float

    def install(self, cluster: SimulatedCluster) -> None:
        if self.end <= self.start:
            raise ValueError("straggler end must come after its start")
        cluster.simulator.schedule_at(
            self.start, lambda: cluster.network.set_straggler(self.replica, self.factor)
        )
        cluster.simulator.schedule_at(
            self.end, lambda: cluster.network.clear_straggler(self.replica)
        )

    def end_time(self) -> float:
        return self.end


@dataclass
class DuplicateMessages:
    """Deliver a second copy of each message with ``probability`` during
    ``[start, end)``.

    The paper's channels may duplicate; the algorithm's sets and the delta
    stream's cumulative acks make every delivery idempotent, so the only
    observable effect should be the ``duplicated`` counter."""

    start: float
    end: float
    probability: float = 1.0

    def install(self, cluster: SimulatedCluster) -> None:
        if self.end <= self.start:
            raise ValueError("duplication end must come after its start")
        cluster.simulator.schedule_at(
            self.start,
            lambda: cluster.network.start_duplication(self.end, self.probability),
        )

    def end_time(self) -> float:
        return self.end


@dataclass
class CorruptTransfers:
    """Flip bytes in checkpoint-transfer chunks with ``probability`` during
    ``[start, end)``.

    The receiver recomputes the assembled checkpoint's sha-256 content
    digest against the one the chunks were sent under and discards a
    mismatching body; the next advert that still shows it behind re-queues
    the pull, so a corrupted transfer costs a retry, never safety."""

    start: float
    end: float
    probability: float = 1.0

    def install(self, cluster: SimulatedCluster) -> None:
        if self.end <= self.start:
            raise ValueError("corruption end must come after its start")
        cluster.simulator.schedule_at(
            self.start,
            lambda: cluster.network.start_corruption(self.end, self.probability),
        )

    def end_time(self) -> float:
        return self.end


@dataclass
class ClockSkew:
    """Skew each affected replica's local clock by a fixed offset drawn
    uniformly from ``[-max_skew, +max_skew]`` during ``[start, end)``.

    The offsets are drawn from the dedicated ``fault_rng`` stream at
    install time (one draw per affected replica, in replica-id order), so
    enabling the adversary never consumes primary-stream randomness — the
    delivery schedule is bit-identical with and without it.  The algorithm
    is asynchronous and never reads clocks for correctness; the only
    observable effect is on gossip ``sent_at`` timestamps (and the lag
    bounds the cluster derives from them), which is exactly the claim the
    twin tests pin down.

    ``replicas=None`` skews every replica in the cluster."""

    start: float
    end: float
    max_skew: float = 5.0
    replicas: Optional[List[str]] = None

    def install(self, cluster: SimulatedCluster) -> None:
        if self.end <= self.start:
            raise ValueError("skew end must come after its start")
        if self.max_skew < 0:
            raise ValueError("max_skew must be non-negative")
        targets = list(self.replicas) if self.replicas is not None else list(cluster.replica_ids)

        def begin() -> None:
            for node in targets:
                offset = cluster.network.fault_rng.uniform(-self.max_skew, self.max_skew)
                cluster.network.set_clock_skew(node, offset)

        def finish() -> None:
            for node in targets:
                cluster.network.clear_clock_skew(node)

        cluster.simulator.schedule_at(self.start, begin)
        cluster.simulator.schedule_at(self.end, finish)

    def end_time(self) -> float:
        return self.end


@dataclass
class FaultSchedule:
    """A collection of faults to install on a cluster before running it."""

    faults: List = field(default_factory=list)

    def add(self, fault) -> "FaultSchedule":
        self.faults.append(fault)
        return self

    def install(self, cluster: SimulatedCluster) -> None:
        cluster.start()
        for fault in self.faults:
            fault.install(cluster)

    def last_fault_time(self) -> float:
        """The time after which the timing assumptions hold again (the ``t``
        of Theorem 9.4)."""
        return max((fault.end_time() for fault in self.faults), default=0.0)


# --------------------------------------------------------------------------- #
# Serialization (conformance vectors)                                         #
# --------------------------------------------------------------------------- #

#: Fault kind tag -> dataclass, used by the conformance codec to round-trip
#: fault schedules through vector files.  New adversaries must register here.
FAULT_KINDS: Dict[str, type] = {
    "replica_crash": ReplicaCrash,
    "gossip_outage": GossipOutage,
    "delay_spike": DelaySpike,
    "asymmetric_partition": AsymmetricPartition,
    "straggler": StragglerReplica,
    "duplicate_messages": DuplicateMessages,
    "corrupt_transfers": CorruptTransfers,
    "clock_skew": ClockSkew,
}

_KIND_OF = {cls: kind for kind, cls in FAULT_KINDS.items()}


def fault_to_dict(fault: Any) -> Dict[str, Any]:
    """A plain-JSON representation of *fault* (its kind tag plus fields)."""
    cls = type(fault)
    if cls not in _KIND_OF:
        raise ValueError(f"unregistered fault class {cls.__name__}")
    doc = dataclasses.asdict(fault)
    doc["kind"] = _KIND_OF[cls]
    return doc


def fault_from_dict(doc: Dict[str, Any]) -> Any:
    """Rebuild a fault from :func:`fault_to_dict` output.  Unknown keys
    (e.g. the sharded harness's ``shard`` attribution) are ignored."""
    fields = dict(doc)
    kind = fields.pop("kind", None)
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}")
    cls = FAULT_KINDS[kind]
    names = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in fields.items() if k in names})
