"""Client workload generation for the simulated cluster.

``WorkloadSpec`` describes what clients do: the operator mix, how often they
submit, what fraction of requests are strict, and how ``prev`` dependencies
are chosen.  ``run_workload`` installs the workload on a cluster, runs the
simulation for the requested duration plus a drain phase, and returns the
collected metrics — this is the engine behind benchmarks E1, E2, E5, E7 and
E8.

``KeyedWorkloadSpec`` / ``run_keyed_workload`` are the multi-object
counterparts for :class:`~repro.sim.sharded.ShardedCluster`: clients pick a
key per request (uniformly or zipfian-skewed), mix strict and non-strict
requests, and may chain per-key ``prev`` dependencies (the session-guarantee
pattern, which by construction never crosses a shard boundary).  This is the
engine behind benchmark E9.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common import MetricsError, OperationId
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import Operator
from repro.sim.cluster import SimulatedCluster
from repro.sim.metrics import LatencySummary, MetricsCollector, PerShardMetrics
from repro.sim.sharded import ShardedCluster

#: An operator generator receives the per-client RNG and a running index and
#: returns the operator to submit.
OperatorFactory = Callable[[random.Random, int], Operator]


def default_counter_mix(rng: random.Random, index: int) -> Operator:
    """A simple update-heavy counter mix (2/3 increments, 1/3 reads)."""
    return Operator("increment") if rng.random() < 2 / 3 else Operator("read")


#: Per-client workload seeds are derived as ``seed * STRIDE + client_index``.
CLIENT_SEED_STRIDE = 1009


def default_drain_time(params) -> float:
    """Generous default drain window after the last submission: ~10 gossip
    rounds plus request round trips, shared by the keyed and unkeyed
    engines so their runs stay comparable."""
    return 10 * (params.gossip_period + params.dg) + 10 * params.df


def interarrival_gap(rng: random.Random, mean: float, poisson: bool) -> float:
    """One submission gap: exponential with the given mean, or fixed."""
    return rng.expovariate(1.0 / mean) if poisson else mean


@dataclass
class WorkloadSpec:
    """Description of the client workload.

    Parameters
    ----------
    operations_per_client:
        How many operations each client submits.
    mean_interarrival:
        Mean time between submissions by one client.  With
        ``poisson_arrivals`` the gaps are exponential; otherwise fixed.
    strict_fraction:
        Probability that a request is strict.
    prev_policy:
        ``"none"`` (empty ``prev`` sets), ``"last_own"`` (depend on the
        client's previous operation — the session guarantee pattern of
        Section 9.2's last remark), or ``"random_own"`` (depend on a random
        earlier operation of the same client).
    operator_factory:
        Generates the data-type operator for each request.
    """

    operations_per_client: int = 50
    mean_interarrival: float = 1.0
    poisson_arrivals: bool = False
    strict_fraction: float = 0.0
    prev_policy: str = "none"
    operator_factory: OperatorFactory = default_counter_mix

    #: Accepted ``prev_policy`` values (subclasses override).
    VALID_PREV_POLICIES = ("none", "last_own", "random_own")

    def __post_init__(self) -> None:
        if self.prev_policy not in self.VALID_PREV_POLICIES:
            raise ValueError(f"unknown prev policy {self.prev_policy!r}")
        if not 0.0 <= self.strict_fraction <= 1.0:
            raise ValueError("strict_fraction must be within [0, 1]")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")


class ClientWorkload:
    """Submission schedule for a single client."""

    def __init__(self, client_id: str, spec: WorkloadSpec, seed: int) -> None:
        self.client_id = client_id
        self.spec = spec
        self.rng = random.Random(seed)
        self._own_history: List[OperationId] = []

    def _next_gap(self) -> float:
        return interarrival_gap(
            self.rng, self.spec.mean_interarrival, self.spec.poisson_arrivals
        )

    def _prev_for(self) -> Tuple[OperationId, ...]:
        if self.spec.prev_policy == "none" or not self._own_history:
            return ()
        if self.spec.prev_policy == "last_own":
            return (self._own_history[-1],)
        return (self.rng.choice(self._own_history),)

    def install(self, cluster: SimulatedCluster, start_time: float = 0.0) -> List[OperationDescriptor]:
        """Schedule every submission of this client on *cluster*.

        Returns the operation descriptors in submission order.
        """
        submitted: List[OperationDescriptor] = []
        when = start_time
        for index in range(self.spec.operations_per_client):
            when += self._next_gap()
            operator = self.spec.operator_factory(self.rng, index)
            strict = self.rng.random() < self.spec.strict_fraction
            prev = self._prev_for()
            operation = cluster.submit(
                self.client_id, operator, prev=prev, strict=strict, at=when
            )
            self._own_history.append(operation.id)
            submitted.append(operation)
        return submitted


@dataclass
class WorkloadResult:
    """Everything a benchmark needs from one simulated run."""

    cluster: SimulatedCluster
    metrics: MetricsCollector
    duration: float
    submitted: int

    @property
    def throughput(self) -> float:
        """Completed operations per unit time over the submission window."""
        return self.metrics.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean latency over every completed operation.

        Raises :class:`~repro.common.MetricsError` when nothing completed —
        a mean of an empty set is a workload bug (nothing drained, or every
        request was lost), not a number.
        """
        return self.latency_summary().mean

    def latency_summary(self, category: Optional[str] = None) -> LatencySummary:
        summary = self.metrics.latency_summary(category)
        if summary.count == 0:
            label = f" in category {category!r}" if category is not None else ""
            raise MetricsError(
                f"no operations completed{label}: latency is undefined "
                f"({self.submitted} submitted, {self.metrics.outstanding} outstanding; "
                f"did the run include a drain phase?)"
            )
        return summary


def run_workload(
    cluster: SimulatedCluster,
    spec: WorkloadSpec,
    seed: int = 0,
    drain_time: Optional[float] = None,
) -> WorkloadResult:
    """Install *spec* on every client of *cluster*, run to completion, and
    return the collected metrics.

    ``drain_time`` bounds the extra time allowed after the last submission for
    outstanding (typically strict) operations to complete; by default it is
    generous enough for several gossip rounds.
    """
    cluster.start()
    submitted = 0
    for index, client in enumerate(cluster.client_ids):
        workload = ClientWorkload(client, spec, seed=seed * CLIENT_SEED_STRIDE + index)
        submitted += len(workload.install(cluster, start_time=cluster.now))

    submission_window = spec.operations_per_client * spec.mean_interarrival
    if drain_time is None:
        drain_time = default_drain_time(cluster.params)
    cluster.run(submission_window)
    cluster.run_until_idle(max_time=drain_time)
    duration = max(cluster.metrics.finished_at - cluster.metrics.started_at, submission_window)
    return WorkloadResult(
        cluster=cluster,
        metrics=cluster.metrics,
        duration=duration,
        submitted=submitted,
    )


# ---------------------------------------------------------------------------
# Keyed workloads for the sharded service layer (benchmark E9)
# ---------------------------------------------------------------------------


def zipfian_cdf(num_keys: int, exponent: float) -> List[float]:
    """Cumulative distribution of a zipfian law over ``num_keys`` ranks.

    ``P(rank r) ∝ 1 / r^exponent``; rank 1 is the hottest key.  Returned as a
    cumulative list suitable for :func:`bisect.bisect_left` sampling.
    """
    weights = [1.0 / (rank ** exponent) for rank in range(1, num_keys + 1)]
    total = sum(weights)
    return list(itertools.accumulate(weight / total for weight in weights))


@dataclass
class KeyedWorkloadSpec(WorkloadSpec):
    """Description of a multi-object (keyed) client workload.

    Extends :class:`WorkloadSpec` (same arrival process, operator mix and
    strictness knobs) with keyspace parameters:

    num_keys:
        Size of the keyspace (keys are ``k0 .. k{n-1}``).
    key_distribution:
        ``"uniform"`` — every key equally likely; ``"zipfian"`` — key ranks
        follow a zipf law with exponent ``zipf_exponent``.  The rank-to-key
        assignment is shuffled with ``zipf_rank_seed`` and shared by every
        client (a workload has one set of hot keys), so varying the seed
        moves the hot spot onto different shards.
    prev_policy:
        ``"none"`` — empty ``prev`` sets; ``"last_on_key"`` — depend on this
        client's previous operation on the same key (per-key session
        guarantee); ``"random_on_key"`` — depend on a random earlier
        operation of this client on the same key.  Per-key dependencies are
        the only ones a sharded service can honour, since equal keys route to
        equal shards.
    operator_factory:
        Generates the *base-type* operator for each request (the keyed
        ``at(key, ...)`` wrapper is applied by the cluster).
    """

    num_keys: int = 16
    key_distribution: str = "uniform"
    zipf_exponent: float = 1.1
    zipf_rank_seed: int = 0

    VALID_PREV_POLICIES = ("none", "last_on_key", "random_on_key")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_keys < 1:
            raise ValueError("num_keys must be at least 1")
        if self.key_distribution not in ("uniform", "zipfian"):
            raise ValueError(f"unknown key distribution {self.key_distribution!r}")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")


class KeyedClientWorkload:
    """Submission schedule for a single client of a sharded cluster."""

    def __init__(self, client_id: str, spec: KeyedWorkloadSpec, seed: int) -> None:
        self.client_id = client_id
        self.spec = spec
        self.rng = random.Random(seed)
        #: This client's operation history per key (for prev policies).
        self._history_by_key: Dict[str, List[OperationId]] = {}
        keys = [f"k{i}" for i in range(spec.num_keys)]
        if spec.key_distribution == "zipfian":
            # Which concrete key gets which popularity rank is decided by the
            # spec-level seed, shared by every client: a workload has ONE set
            # of hot keys, and varying zipf_rank_seed moves the hot spot.
            random.Random(spec.zipf_rank_seed).shuffle(keys)
            self._cdf = zipfian_cdf(spec.num_keys, spec.zipf_exponent)
        else:
            self._cdf = None
        self._keys = keys

    def _next_gap(self) -> float:
        return interarrival_gap(
            self.rng, self.spec.mean_interarrival, self.spec.poisson_arrivals
        )

    def _choose_key(self) -> str:
        if self._cdf is None:
            return self.rng.choice(self._keys)
        rank = bisect.bisect_left(self._cdf, self.rng.random())
        return self._keys[min(rank, len(self._keys) - 1)]

    def _prev_for(self, key: str) -> Tuple[OperationId, ...]:
        history = self._history_by_key.get(key)
        if self.spec.prev_policy == "none" or not history:
            return ()
        if self.spec.prev_policy == "last_on_key":
            return (history[-1],)
        return (self.rng.choice(history),)

    def install(self, cluster: ShardedCluster, start_time: float = 0.0) -> List[OperationDescriptor]:
        """Schedule every submission of this client on *cluster*.

        Returns the operation descriptors in submission order.
        """
        submitted: List[OperationDescriptor] = []
        when = start_time
        for index in range(self.spec.operations_per_client):
            when += self._next_gap()
            key = self._choose_key()
            operator = self.spec.operator_factory(self.rng, index)
            strict = self.rng.random() < self.spec.strict_fraction
            operation = cluster.submit(
                self.client_id, key, operator,
                prev=self._prev_for(key), strict=strict, at=when,
            )
            self._history_by_key.setdefault(key, []).append(operation.id)
            submitted.append(operation)
        return submitted


@dataclass
class KeyedWorkloadResult:
    """Everything benchmark E9 needs from one sharded run."""

    cluster: ShardedCluster
    metrics: PerShardMetrics
    duration: float
    submitted: int

    @property
    def throughput(self) -> float:
        """Total committed-ops throughput over the run."""
        return self.metrics.throughput(self.duration)

    @property
    def mean_latency(self) -> float:
        """Mean latency across shards (raises
        :class:`~repro.common.MetricsError` when nothing completed)."""
        return self.latency_summary().mean

    def latency_summary(
        self, *, shard: Optional[str] = None, category: Optional[str] = None
    ) -> LatencySummary:
        summary = self.metrics.latency_summary(shard=shard, category=category)
        if summary.count == 0:
            where = f" on shard {shard!r}" if shard is not None else ""
            label = f" in category {category!r}" if category is not None else ""
            raise MetricsError(
                f"no operations completed{where}{label}: latency is undefined "
                f"({self.submitted} submitted)"
            )
        return summary

    def throughput_by_shard(self) -> Dict[str, float]:
        return self.metrics.throughput_by_shard(self.duration)


def run_keyed_workload(
    cluster: ShardedCluster,
    spec: KeyedWorkloadSpec,
    seed: int = 0,
    drain_time: Optional[float] = None,
) -> KeyedWorkloadResult:
    """Install *spec* on every client of the sharded *cluster*, run to
    completion, and return per-shard metrics.

    Mirrors :func:`run_workload`: the simulation runs over the submission
    window, then drains outstanding (typically strict) operations.
    """
    cluster.start()
    started_at = cluster.now
    submitted = 0
    for index, client in enumerate(cluster.client_ids):
        workload = KeyedClientWorkload(client, spec, seed=seed * CLIENT_SEED_STRIDE + index)
        submitted += len(workload.install(cluster, start_time=started_at))

    submission_window = spec.operations_per_client * spec.mean_interarrival
    if drain_time is None:
        drain_time = default_drain_time(cluster.params)
    cluster.run(submission_window)
    cluster.run_until_idle(max_time=drain_time)
    duration = max(cluster.now - started_at, submission_window)
    return KeyedWorkloadResult(
        cluster=cluster,
        metrics=cluster.metrics,
        duration=duration,
        submitted=submitted,
    )
