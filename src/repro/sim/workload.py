"""Client workload generation for the simulated cluster.

``WorkloadSpec`` describes what clients do: the operator mix, how often they
submit, what fraction of requests are strict, and how ``prev`` dependencies
are chosen.  ``run_workload`` installs the workload on a cluster, runs the
simulation for the requested duration plus a drain phase, and returns the
collected metrics — this is the engine behind benchmarks E1, E2, E5, E7 and
E8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common import OperationId
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import Operator, SerialDataType
from repro.sim.cluster import SimulatedCluster
from repro.sim.metrics import LatencySummary, MetricsCollector

#: An operator generator receives the per-client RNG and a running index and
#: returns the operator to submit.
OperatorFactory = Callable[[random.Random, int], Operator]


def default_counter_mix(rng: random.Random, index: int) -> Operator:
    """A simple update-heavy counter mix (2/3 increments, 1/3 reads)."""
    return Operator("increment") if rng.random() < 2 / 3 else Operator("read")


@dataclass
class WorkloadSpec:
    """Description of the client workload.

    Parameters
    ----------
    operations_per_client:
        How many operations each client submits.
    mean_interarrival:
        Mean time between submissions by one client.  With
        ``poisson_arrivals`` the gaps are exponential; otherwise fixed.
    strict_fraction:
        Probability that a request is strict.
    prev_policy:
        ``"none"`` (empty ``prev`` sets), ``"last_own"`` (depend on the
        client's previous operation — the session guarantee pattern of
        Section 9.2's last remark), or ``"random_own"`` (depend on a random
        earlier operation of the same client).
    operator_factory:
        Generates the data-type operator for each request.
    """

    operations_per_client: int = 50
    mean_interarrival: float = 1.0
    poisson_arrivals: bool = False
    strict_fraction: float = 0.0
    prev_policy: str = "none"
    operator_factory: OperatorFactory = default_counter_mix

    def __post_init__(self) -> None:
        if self.prev_policy not in ("none", "last_own", "random_own"):
            raise ValueError(f"unknown prev policy {self.prev_policy!r}")
        if not 0.0 <= self.strict_fraction <= 1.0:
            raise ValueError("strict_fraction must be within [0, 1]")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")


class ClientWorkload:
    """Submission schedule for a single client."""

    def __init__(self, client_id: str, spec: WorkloadSpec, seed: int) -> None:
        self.client_id = client_id
        self.spec = spec
        self.rng = random.Random(seed)
        self._own_history: List[OperationId] = []

    def _next_gap(self) -> float:
        if self.spec.poisson_arrivals:
            return self.rng.expovariate(1.0 / self.spec.mean_interarrival)
        return self.spec.mean_interarrival

    def _prev_for(self) -> Tuple[OperationId, ...]:
        if self.spec.prev_policy == "none" or not self._own_history:
            return ()
        if self.spec.prev_policy == "last_own":
            return (self._own_history[-1],)
        return (self.rng.choice(self._own_history),)

    def install(self, cluster: SimulatedCluster, start_time: float = 0.0) -> List[OperationDescriptor]:
        """Schedule every submission of this client on *cluster*.

        Returns the operation descriptors in submission order.
        """
        submitted: List[OperationDescriptor] = []
        when = start_time
        for index in range(self.spec.operations_per_client):
            when += self._next_gap()
            operator = self.spec.operator_factory(self.rng, index)
            strict = self.rng.random() < self.spec.strict_fraction
            prev = self._prev_for()
            operation = cluster.submit(
                self.client_id, operator, prev=prev, strict=strict, at=when
            )
            self._own_history.append(operation.id)
            submitted.append(operation)
        return submitted


@dataclass
class WorkloadResult:
    """Everything a benchmark needs from one simulated run."""

    cluster: SimulatedCluster
    metrics: MetricsCollector
    duration: float
    submitted: int

    @property
    def throughput(self) -> float:
        """Completed operations per unit time over the submission window."""
        return self.metrics.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        return self.metrics.latency_summary().mean

    def latency_summary(self, category: Optional[str] = None) -> LatencySummary:
        return self.metrics.latency_summary(category)


def run_workload(
    cluster: SimulatedCluster,
    spec: WorkloadSpec,
    seed: int = 0,
    drain_time: Optional[float] = None,
) -> WorkloadResult:
    """Install *spec* on every client of *cluster*, run to completion, and
    return the collected metrics.

    ``drain_time`` bounds the extra time allowed after the last submission for
    outstanding (typically strict) operations to complete; by default it is
    generous enough for several gossip rounds.
    """
    cluster.start()
    submitted = 0
    for index, client in enumerate(cluster.client_ids):
        workload = ClientWorkload(client, spec, seed=seed * 1009 + index)
        submitted += len(workload.install(cluster, start_time=cluster.now))

    submission_window = spec.operations_per_client * spec.mean_interarrival
    if drain_time is None:
        drain_time = 10 * (cluster.params.gossip_period + cluster.params.dg) + 10 * cluster.params.df
    cluster.run(submission_window)
    cluster.run_until_idle(max_time=drain_time)
    duration = max(cluster.metrics.finished_at - cluster.metrics.started_at, submission_window)
    return WorkloadResult(
        cluster=cluster,
        metrics=cluster.metrics,
        duration=duration,
        submitted=submitted,
    )
