"""Event queue and simulated clock.

A minimal discrete-event core: events are ``(time, sequence, callback)``
entries in a binary heap; the simulator pops them in time order and advances
its clock.  Sequence numbers make the order of simultaneous events
deterministic (FIFO among equal timestamps), which keeps every experiment
reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(order=True)
class _QueuedEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """A heap of scheduled callbacks.

    Heap entries are plain ``(time, sequence, event)`` tuples so sift
    comparisons run at C speed (the unique sequence number breaks every
    timestamp tie before the event object would be compared); the ordering is
    exactly the dataclass ordering of :class:`_QueuedEvent`.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, _QueuedEvent]] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None]) -> _QueuedEvent:
        event = _QueuedEvent(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, (time, event.sequence, event))
        return event

    def pop(self) -> Optional[_QueuedEvent]:
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return sum(1 for _time, _seq, event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0


class Simulator:
    """The discrete-event loop: a clock plus an :class:`EventQueue`."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> _QueuedEvent:
        """Schedule *callback* to run *delay* time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        return self.queue.push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _QueuedEvent:
        """Schedule *callback* at an absolute simulation time."""
        if time < self.now:
            raise ValueError("cannot schedule an event in the past")
        return self.queue.push(time, callback)

    def cancel(self, event: _QueuedEvent) -> None:
        """Cancel a previously scheduled event."""
        event.cancelled = True

    def step(self) -> bool:
        """Process one event; returns ``False`` when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.now = event.time
        event.callback()
        self.events_processed += 1
        return True

    def run_until(self, time: float, max_events: Optional[int] = None) -> None:
        """Process events until the clock passes *time* (or the queue drains)."""
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > time:
                self.now = max(self.now, time)
                return
            self.step()
            processed += 1
            if max_events is not None and processed >= max_events:
                return

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Process events until nothing is scheduled (bounded as a safeguard)."""
        processed = 0
        while self.step():
            processed += 1
            if processed >= max_events:
                raise RuntimeError("simulation exceeded the maximum event budget")
