"""Runtime checks of the paper's invariants.

``AlgorithmInvariantChecker`` checks the state of an
:class:`~repro.algorithm.system.AlgorithmSystem` against the invariants of
Sections 4, 7 and 8 (and the Section 10 invariants for the memoizing
replica).  ``SpecInvariantChecker`` checks an ESDS-I/II specification
automaton against the invariants of Section 5.2.

Each invariant is a separate method named after the paper's numbering, so a
failing test points directly at the corresponding claim; ``check_all`` runs
every applicable check and raises :class:`~repro.common.InvariantViolation`
with the invariant name on failure.

With checkpoint compaction enabled (:mod:`repro.algorithm.checkpoint`) a
replica's raw sets cover only the unstable suffix; the Section 7/8 claims
are then evaluated against the **checkpoint + suffix** view:

* membership invariants (7.4, 7.13, and message checks in 7.3) treat a
  replica's compacted operations — reconstructed from the system's
  :class:`~repro.algorithm.checkpoint.CompactionLedger` — as received, done
  and stable;
* label invariants (7.10, 7.17, 7.19) skip identifiers a replica has
  compacted: the archived label was the global minimum when it was dropped
  (Invariant 7.19), which the dedicated checkpoint invariant re-verifies
  structurally;
* order invariants (7.21, 8.3) compare only operations still tracked
  somewhere; the frozen order of the compacted prefix is checked directly
  against the ledger by :meth:`invariant_checkpoint_compaction` (nestedness,
  frontier below every tracked label, base state = prefix replay, retained
  values = replay values).

Under **advert/pull** gossip the gossip channels additionally carry pull
requests and checkpoint-transfer chunks.  Those are not ``(R, D, L, S)``
messages: the per-message Section 7 checks apply only to ``kind ==
"gossip"`` traffic, while :meth:`invariant_advert_pull_messages` checks the
catch-up protocol's own structural claims (an advertised or transferred
frontier never ahead of the sender's, transferred content nested within the
agreed ledger prefix).  An advert is treated as *knowledge* only once the
pull it triggers completes — the effective-view evaluation of in-transit
messages therefore ignores adverts, matching what receiving one actually
does to a caught-up replica (nothing beyond stability marking).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Set

from repro.algorithm.labels import label_sort_key
from repro.algorithm.memoized import MemoizedReplicaCore
from repro.algorithm.system import AlgorithmSystem
from repro.common import INFINITY, InvariantViolation, OperationId
from repro.core.operations import client_specified_constraints
from repro.core.orders import transitive_closure
from repro.spec.base import EsdsSpecBase


def _fail(name: str, detail: str) -> None:
    raise InvariantViolation(f"{name}: {detail}")


class AlgorithmInvariantChecker:
    """Checks the Section 7/8 invariants on the full algorithm system."""

    def __init__(self, system: AlgorithmSystem) -> None:
        self.system = system

    # -- checkpoint + suffix views ---------------------------------------------

    def _compacted(self, replica_id: str) -> Set:
        """The operations *replica_id* has folded into its checkpoint, as
        descriptors (reconstructed from the system's compaction ledger)."""
        replica = self.system.replicas[replica_id]
        if not replica.checkpoint.count:
            return set()
        return set(self.system.compacted_ops(replica_id))

    def _is_compacted(self, replica_id: str, op_id: OperationId) -> bool:
        return self.system.replicas[replica_id].checkpoint.covers(op_id)

    @staticmethod
    def _gossip_messages(channel):
        """The ``(R, D, L, S)`` messages in transit on *channel* — pull and
        checkpoint-transfer traffic shares the gossip channels but has its
        own structural check (:meth:`invariant_advert_pull_messages`)."""
        return [m for m in channel.contents() if m.kind == "gossip"]

    # -- entry points ----------------------------------------------------------

    def check_all(self) -> None:
        """Run every invariant check; raise on the first violation."""
        self.invariant_4_1_unique_identifiers()
        self.invariant_4_2_csc_is_strict_partial_order()
        self.invariant_7_1_local_knowledge_dominates()
        self.invariant_7_2_stable_is_done_everywhere()
        self.invariant_7_3_gossip_not_ahead_of_sender()
        self.invariant_7_4_remote_knowledge_not_ahead()
        self.invariant_7_5_labels_exactly_for_done()
        self.invariant_7_6_everything_was_requested()
        self.invariant_7_7_replies_are_done()
        self.invariant_7_8_answered_requests_are_done()
        self.invariant_7_10_prev_labels_not_larger()
        self.invariant_7_11_local_constraints_acyclic()
        self.invariant_7_12_system_constraints_acyclic()
        self.invariant_7_13_own_labels_imply_done()
        self.invariant_7_15_labels_total_on_done()
        self.invariant_7_17_own_label_is_minimum_seen()
        self.invariant_7_19_stable_prefix_has_min_labels()
        self.invariant_7_21_stable_order_matches_minlabel()
        self.invariant_8_1_po_is_partial_order()
        self.invariant_8_3_stable_ordered_by_minlabel()
        self.invariant_10_memoized_replicas()
        self.invariant_checkpoint_compaction()
        self.invariant_advert_pull_messages()

    def __call__(self, *_args, **_kwargs) -> None:
        """Allow use as a step hook."""
        self.check_all()

    # -- Section 4 -------------------------------------------------------------

    def invariant_4_1_unique_identifiers(self) -> None:
        requested = self.system.users.requested
        ids = [x.id for x in requested]
        if len(ids) != len(set(ids)):
            _fail("Invariant 4.1", "duplicate operation identifiers in requested")

    def invariant_4_2_csc_is_strict_partial_order(self) -> None:
        closure = transitive_closure(
            client_specified_constraints(self.system.users.requested)
        )
        if any(a == b for a, b in closure):
            _fail("Invariant 4.2", "client-specified constraints contain a cycle")

    # -- Section 7: basic invariants -------------------------------------------

    def invariant_7_1_local_knowledge_dominates(self) -> None:
        for r, replica in self.system.replicas.items():
            union_done = set().union(*replica.done.values())
            union_stable = set().union(*replica.stable.values())
            if replica.done_here() != union_done:
                _fail("Invariant 7.1", f"done_{r}[{r}] != U_i done_{r}[i]")
            if replica.stable_here() != union_stable:
                _fail("Invariant 7.1", f"stable_{r}[{r}] != U_i stable_{r}[i]")

    def invariant_7_2_stable_is_done_everywhere(self) -> None:
        for r, replica in self.system.replicas.items():
            intersection = set.intersection(*(replica.done[i] for i in replica.replica_ids))
            if replica.stable_here() != intersection:
                _fail("Invariant 7.2", f"stable_{r}[{r}] != ⋂_i done_{r}[i]")

    def invariant_7_3_gossip_not_ahead_of_sender(self) -> None:
        # Delta messages are checked through their *effective* views
        # (delta ∪ acknowledged basis) — the knowledge the message conveys,
        # which is exactly what a full message sent at the same instant would
        # have carried.  A sender may have compacted operations an in-flight
        # message still lists; its checkpoint + suffix view still covers them.
        for (src, dst), channel in self.system.gossip_channels.items():
            sender = self.system.replicas[src]
            compacted = self._compacted(src)
            for message in self._gossip_messages(channel):
                if not message.effective_received() <= sender.rcvd | compacted:
                    _fail("Invariant 7.3", f"gossip {src}->{dst}: R not within rcvd_{src}")
                if not message.effective_done() <= sender.done_here() | compacted:
                    _fail("Invariant 7.3", f"gossip {src}->{dst}: D not within done_{src}")
                if not message.effective_stable() <= sender.stable_here() | compacted:
                    _fail("Invariant 7.3", f"gossip {src}->{dst}: S not within stable_{src}")
                if not message.effective_stable() <= message.effective_done():
                    _fail("Invariant 7.3", f"gossip {src}->{dst}: S not within D")
                for op_id, label in message.effective_labels().items():
                    if self._is_compacted(src, op_id):
                        # The sender's archived label was the global minimum
                        # (Invariant 7.19), so it cannot exceed the message's.
                        continue
                    if label_sort_key(sender.label_of(op_id)) > label_sort_key(label):
                        _fail(
                            "Invariant 7.3",
                            f"gossip {src}->{dst}: message label for {op_id} below sender's",
                        )
                coverage = message.coverage()
                if coverage is not None and coverage.count:
                    frontier = sender.checkpoint.frontier
                    if frontier is None or label_sort_key(
                        coverage.frontier
                    ) > label_sort_key(frontier):
                        _fail(
                            "Invariant 7.3",
                            f"gossip {src}->{dst}: checkpoint frontier ahead of sender's",
                        )

    def invariant_7_4_remote_knowledge_not_ahead(self) -> None:
        for r, replica in self.system.replicas.items():
            for i in replica.replica_ids:
                actual = self.system.replicas[i]
                compacted = self._compacted(i)
                if not replica.done[i] <= actual.done_here() | compacted:
                    _fail("Invariant 7.4", f"done_{r}[{i}] not within done_{i}[{i}]")
                if not replica.stable[i] <= actual.stable_here() | compacted:
                    _fail("Invariant 7.4", f"stable_{r}[{i}] not within stable_{i}[{i}]")

    def invariant_7_5_labels_exactly_for_done(self) -> None:
        for r, replica in self.system.replicas.items():
            done_ids = {x.id for x in replica.done_here()}
            labelled_ids = set(replica.labels)
            if done_ids != labelled_ids:
                _fail(
                    "Invariant 7.5",
                    f"replica {r}: labelled ids {len(labelled_ids)} != done ids {len(done_ids)}",
                )
        for (src, dst), channel in self.system.gossip_channels.items():
            for message in self._gossip_messages(channel):
                if {x.id for x in message.effective_done()} != set(message.effective_labels()):
                    _fail("Invariant 7.5", f"gossip {src}->{dst}: D.id != labelled ids")

    def invariant_7_6_everything_was_requested(self) -> None:
        requested = self.system.users.requested
        in_flight: Set = set()
        for channel in self.system.request_channels.values():
            in_flight |= {m.operation for m in channel.contents()}
        everything: Set = set()
        for frontend in self.system.frontends.values():
            everything |= frontend.wait
        everything |= in_flight
        for replica in self.system.replicas.values():
            everything |= replica.rcvd
        everything |= self.system.ops()
        if not everything <= requested:
            _fail("Invariant 7.6", "operation present in the system but never requested")

    def invariant_7_7_replies_are_done(self) -> None:
        ops = self.system.ops()
        for client, frontend in self.system.frontends.items():
            answered = {x for (x, _v) in frontend.rept}
            answered |= {x for (x, _v) in self.system.potential_rept(client)}
            if not answered <= ops:
                _fail("Invariant 7.7", f"client {client}: reply for an operation not done anywhere")

    def invariant_7_8_answered_requests_are_done(self) -> None:
        waiting: Set = set()
        for frontend in self.system.frontends.values():
            waiting |= frontend.wait
        finished = self.system.users.requested - waiting
        if not finished <= self.system.ops():
            _fail("Invariant 7.8", "a request left wait without being done at a replica")

    # -- Section 7: constraint invariants --------------------------------------

    def invariant_7_10_prev_labels_not_larger(self) -> None:
        ops = self.system.ops()
        csc = client_specified_constraints(ops)
        for r, replica in self.system.replicas.items():
            for before, after in csc:
                if self._is_compacted(r, after):
                    # The prefix property makes the strengthened claim
                    # checkable without labels: a compacted operation's
                    # predecessors must have been compacted with it.
                    if not self._is_compacted(r, before):
                        _fail(
                            "Invariant 7.10",
                            f"replica {r}: {after} compacted but its prev {before} is not",
                        )
                    continue
                if self._is_compacted(r, before):
                    continue  # archived below the frontier; after's label is above it
                if label_sort_key(replica.label_of(before)) > label_sort_key(replica.label_of(after)):
                    _fail(
                        "Invariant 7.10",
                        f"replica {r}: label({before}) > label({after}) despite prev constraint",
                    )
        for (src, dst), channel in self.system.gossip_channels.items():
            for message in self._gossip_messages(channel):
                # Coverage = the attached checkpoint body or advert (both
                # are structural assertions by the sender about its frozen
                # prefix), falling back to a delta's acknowledged basis.
                coverage = message.coverage()
                if coverage is None:
                    coverage = message.effective_checkpoint()
                for before, after in csc:
                    if coverage is not None and coverage.covers(after):
                        if not coverage.covers(before):
                            _fail(
                                "Invariant 7.10",
                                f"gossip {src}->{dst}: checkpoint covers {after} "
                                f"but not its prev {before}",
                            )
                        continue
                    if coverage is not None and coverage.covers(before):
                        continue
                    if label_sort_key(message.label_of(before)) > label_sort_key(message.label_of(after)):
                        _fail(
                            "Invariant 7.10",
                            f"gossip {src}->{dst}: L({before}) > L({after}) despite prev constraint",
                        )

    def invariant_7_11_local_constraints_acyclic(self) -> None:
        ops = self.system.ops()
        csc = client_specified_constraints(ops)
        for r in self.system.replica_ids:
            closure = transitive_closure(csc | self.system.local_constraints(r))
            if any(a == b for a, b in closure):
                _fail("Invariant 7.11", f"TC(CSC(ops) u lc_{r}) has a cycle")

    def invariant_7_12_system_constraints_acyclic(self) -> None:
        ops = self.system.ops()
        csc = client_specified_constraints(ops)
        closure = transitive_closure(csc | self.system.system_constraints())
        if any(a == b for a, b in closure):
            _fail("Invariant 7.12", "TC(CSC(ops) u sc) has a cycle")

    def invariant_7_13_own_labels_imply_done(self) -> None:
        ops = self.system.ops()
        for r, replica in self.system.replicas.items():
            done_here = replica.done_here()
            for x in ops:
                if self._is_compacted(r, x.id):
                    continue  # done at r; the record lives in the checkpoint
                for other in self.system.replicas.values():
                    label = other.label_of(x.id)
                    if label is not INFINITY and label.replica == r and x not in done_here:
                        _fail(
                            "Invariant 7.13",
                            f"operation {x.id} labelled from L_{r} but not done at {r}",
                        )

    def invariant_7_15_labels_total_on_done(self) -> None:
        for r, replica in self.system.replicas.items():
            labels = [replica.label_of(x.id) for x in replica.done_here()]
            keys = [label_sort_key(l) for l in labels]
            if len(keys) != len(set(keys)):
                _fail("Invariant 7.15", f"replica {r}: two done operations share a label")
            if any(l is INFINITY for l in labels):
                _fail("Invariant 7.15", f"replica {r}: a done operation has no label")

    def invariant_7_17_own_label_is_minimum_seen(self) -> None:
        # Identifiers compacted at r are skipped: r archived the global
        # minimum label for them (Invariant 7.19), so nothing seen elsewhere
        # can be smaller.
        for r, replica in self.system.replicas.items():
            for other in self.system.replicas.values():
                for op_id, label in other.labels.items():
                    if label.replica == r and not self._is_compacted(r, op_id):
                        if label_sort_key(replica.label_of(op_id)) > label_sort_key(label):
                            _fail(
                                "Invariant 7.17",
                                f"replica {r} has a larger label for {op_id} than its own label "
                                f"held elsewhere",
                            )
            for (_src, _dst), channel in self.system.gossip_channels.items():
                for message in self._gossip_messages(channel):
                    for op_id, label in message.effective_labels().items():
                        if label.replica == r and not self._is_compacted(r, op_id):
                            if label_sort_key(replica.label_of(op_id)) > label_sort_key(label):
                                _fail(
                                    "Invariant 7.17",
                                    f"replica {r} has a larger label for {op_id} than a gossiped "
                                    f"label from L_{r}",
                                )

    def invariant_7_19_stable_prefix_has_min_labels(self) -> None:
        # ``minlabel`` ranges over replicas that still track the identifier;
        # an identifier compacted at r is skipped for r (its archived label
        # was the minimum), and one compacted everywhere has no tracked
        # minimum to compare at all (its order is frozen in the checkpoint,
        # audited by invariant_checkpoint_compaction).
        for r, replica in self.system.replicas.items():
            for stable_op in replica.stable_here():
                stable_min = label_sort_key(self.system.minlabel(stable_op.id))
                for x in self.system.ops():
                    if self._is_compacted(r, x.id):
                        continue
                    if label_sort_key(self.system.minlabel(x.id)) <= stable_min:
                        if label_sort_key(replica.label_of(x.id)) != label_sort_key(
                            self.system.minlabel(x.id)
                        ):
                            _fail(
                                "Invariant 7.19",
                                f"replica {r} does not hold the minimum label for {x.id} although "
                                f"{stable_op.id} is stable with a larger minimum label",
                            )

    def invariant_7_21_stable_order_matches_minlabel(self) -> None:
        # Restricted to operations still tracked everywhere: once an
        # identifier is compacted somewhere its minimum label is partially
        # forgotten, and its (frozen) order is audited against the ledger by
        # invariant_checkpoint_compaction instead.
        compacted_anywhere = self.system.compaction_ledger.ids
        everywhere_stable = self.system.stable_everywhere()
        ops = self.system.ops()
        constraints = transitive_closure(
            client_specified_constraints(ops) | self.system.system_constraints()
        )
        for x in everywhere_stable:
            if x.id in compacted_anywhere:
                continue
            for y in ops:
                if x.id == y.id or y.id in compacted_anywhere:
                    continue
                expected = label_sort_key(self.system.minlabel(x.id)) < label_sort_key(
                    self.system.minlabel(y.id)
                )
                actual = (x.id, y.id) in constraints
                if expected != actual:
                    _fail(
                        "Invariant 7.21",
                        f"ordering of stable {x.id} vs {y.id} disagrees with minimum labels",
                    )

    # -- Section 8 --------------------------------------------------------------

    def invariant_8_1_po_is_partial_order(self) -> None:
        try:
            po = self.system.partial_order()
        except ValueError as exc:
            _fail("Invariant 8.1", f"derived po is cyclic: {exc}")
            return
        ops_ids = {x.id for x in self.system.ops()}
        if not po.span() <= ops_ids:
            _fail("Invariant 8.1", "derived po mentions identifiers outside ops")

    def invariant_8_3_stable_ordered_by_minlabel(self) -> None:
        po = self.system.partial_order()
        compacted_anywhere = self.system.compaction_ledger.ids
        everywhere_stable = self.system.stable_everywhere()
        for x in everywhere_stable:
            if x.id in compacted_anywhere:
                continue
            for y in self.system.ops():
                if x.id == y.id or y.id in compacted_anywhere:
                    continue
                by_label = label_sort_key(self.system.minlabel(x.id)) < label_sort_key(
                    self.system.minlabel(y.id)
                )
                if by_label != po.precedes(x.id, y.id):
                    _fail(
                        "Invariant 8.3",
                        f"po ordering of stable {x.id} vs {y.id} disagrees with minimum labels",
                    )

    # -- Section 10 --------------------------------------------------------------

    def invariant_10_memoized_replicas(self) -> None:
        """Invariants 10.3 and 10.4 for memoizing replicas (no-op otherwise)."""
        for r, replica in self.system.replicas.items():
            if not isinstance(replica, MemoizedReplicaCore):
                continue
            solid = replica.solid_operations()
            if not replica.memoized <= solid:
                _fail("Invariant 10.3", f"replica {r}: memoized operation is not solid")
            # Invariant 10.4: ms equals the outcome of the memoized prefix in
            # label order — applied on top of the compaction checkpoint's
            # base state, which the memoized prefix now starts from.
            state = replica.checkpoint.base_state
            ordered = sorted(
                replica.memoized, key=lambda x: label_sort_key(replica.label_of(x.id))
            )
            for x in ordered:
                state, value = replica.data_type.apply(state, x.op)
                if replica.memo_values.get(x) != value:
                    _fail("Invariant 10.4", f"replica {r}: memoized value for {x.id} is wrong")
            if state != replica.memo_state:
                _fail("Invariant 10.4", f"replica {r}: memoized state diverges from replay")

    # -- checkpoint compaction ---------------------------------------------------

    def invariant_checkpoint_compaction(self) -> None:
        """The structural claims compaction rests on (no-op while nothing has
        been compacted):

        * every compacted identifier was requested, and every replica's
          compacted set is exactly a prefix of the system-wide agreed order
          (the ledger) — so checkpoints are nested across replicas;
        * every label a replica still tracks exceeds its frontier;
        * the checkpoint base state equals the replay of its prefix in the
          agreed order, and every retained value equals the replay value.
        """
        ledger = self.system.compaction_ledger
        requested_ids = {x.id for x in self.system.users.requested}
        prefix_states: List = []  # state after prefix[:k], computed lazily
        for r, replica in self.system.replicas.items():
            checkpoint = replica.checkpoint
            count = checkpoint.count
            if count == 0:
                continue
            if count > len(ledger.prefix):
                _fail(
                    "Checkpoint",
                    f"replica {r} compacted {count} operations but the ledger only "
                    f"records {len(ledger.prefix)}",
                )
            prefix = ledger.prefix[:count]
            for x in prefix:
                if not checkpoint.covers(x.id):
                    _fail(
                        "Checkpoint",
                        f"replica {r}: id summary does not cover prefix operation {x.id}",
                    )
                if x.id not in requested_ids:
                    _fail("Checkpoint", f"replica {r}: compacted {x.id} was never requested")
            frontier_key = label_sort_key(checkpoint.frontier)
            for op_id, label in replica.labels.items():
                if label_sort_key(label) <= frontier_key:
                    _fail(
                        "Checkpoint",
                        f"replica {r}: tracked label for {op_id} at or below the frontier",
                    )
            # Replay the agreed prefix once, reusing partial states across
            # replicas (checkpoints are nested prefixes of the same order).
            while len(prefix_states) < count:
                previous = (
                    prefix_states[-1][0]
                    if prefix_states
                    else self.system.data_type.initial_state()
                )
                state, value = self.system.data_type.apply(
                    previous, ledger.prefix[len(prefix_states)].op
                )
                prefix_states.append((state, value))
            if prefix_states[count - 1][0] != checkpoint.base_state:
                _fail(
                    "Checkpoint",
                    f"replica {r}: base state diverges from the agreed prefix replay",
                )
            by_position = {x.id: index for index, x in enumerate(prefix)}
            for op_id, value in checkpoint.values.items():
                position = by_position.get(op_id)
                if position is None:
                    _fail(
                        "Checkpoint",
                        f"replica {r}: retained value for {op_id} outside the prefix",
                    )
                if prefix_states[position][1] != value:
                    _fail(
                        "Checkpoint",
                        f"replica {r}: retained value for {op_id} diverges from replay",
                    )


    # -- advert/pull gossip -------------------------------------------------------

    def invariant_advert_pull_messages(self) -> None:
        """Structural claims of the advert/pull catch-up protocol (no-op
        while no pull or transfer traffic is in flight):

        * a transferred checkpoint's frontier is never ahead of its sender's
          current frontier (the sender answers pulls with its *current*
          checkpoint, and frontiers only advance);
        * the transferred identifier summary is exactly a prefix of the
          system-wide agreed ledger order — the nestedness adoption relies
          on;
        * a pull request targets the replica that advertised (routing
          integrity on the shared gossip channels).
        """
        ledger = self.system.compaction_ledger
        for (src, dst), channel in self.system.gossip_channels.items():
            for message in channel.contents():
                if message.kind == "pull":
                    if message.target != dst or message.requester != src:
                        _fail(
                            "Advert/pull",
                            f"pull on channel {src}->{dst} addressed "
                            f"{message.requester}->{message.target}",
                        )
                elif message.kind == "transfer":
                    sender = self.system.replicas[src]
                    frontier = sender.checkpoint.frontier
                    if frontier is None or label_sort_key(message.frontier) > label_sort_key(
                        frontier
                    ):
                        _fail(
                            "Advert/pull",
                            f"transfer {src}->{dst}: frontier ahead of sender's",
                        )
                    if message.ids.count > len(ledger.prefix):
                        _fail(
                            "Advert/pull",
                            f"transfer {src}->{dst}: covers {message.ids.count} operations "
                            f"but the ledger records {len(ledger.prefix)}",
                        )
                    for x in ledger.prefix[: message.ids.count]:
                        if x.id not in message.ids:
                            _fail(
                                "Advert/pull",
                                f"transfer {src}->{dst}: id summary is not the agreed "
                                f"ledger prefix (missing {x.id})",
                            )


def check_reshard_handoff(
    slice_order: Sequence[OperationId],
    dest_order: Sequence[OperationId],
    post_flip: Mapping[OperationId, OperationId],
    context: str = "",
) -> None:
    """The live-resharding handoff invariants, checked per migrated pair.

    *slice_order* is the frozen source-side history of the moved key ranges
    (the source shard's eventual order restricted to migrated operations);
    *dest_order* is the destination shard's eventual order after injection;
    *post_flip* maps each operation minted at the destination for a migrated
    key to that key's migrated-history tail.

    Checks:

    * every migrated operation is present at the destination;
    * the slice appears as an **in-order subsequence** of the destination's
      eventual order — the destination never reorders the migrated history
      (this is what makes per-key values response-equivalent across the
      handoff, by keyed-store obliviousness).  Callers audit one key's
      sub-slice at a time: cross-key interleavings are unobservable through
      a keyed store and stop being preserved once a history migrates back
      to a former owner (already-present operations keep their original
      positions there);
    * every post-flip operation on a migrated key is ordered **after** that
      key's migrated tail — the barrier constraints held, so new traffic
      cannot interleave into (or undercut) the relocated past.
    """
    where = f" ({context})" if context else ""
    position = {op_id: index for index, op_id in enumerate(dest_order)}
    previous = -1
    for op_id in slice_order:
        index = position.get(op_id)
        if index is None:
            _fail(
                "Reshard handoff",
                f"migrated operation {op_id} missing from destination order{where}",
            )
        if index <= previous:
            _fail(
                "Reshard handoff",
                f"destination reordered migrated history at {op_id}{where}",
            )
        previous = index
    for op_id, tail in post_flip.items():
        if op_id not in position:
            continue  # not yet labelled anywhere; ordered after everything
        if tail in position and position[op_id] <= position[tail]:
            _fail(
                "Reshard handoff",
                f"post-flip operation {op_id} ordered before migrated tail {tail}{where}",
            )


class SpecInvariantChecker:
    """Checks the Section 5.2 invariants on an ESDS-I / ESDS-II automaton."""

    def __init__(self, spec: EsdsSpecBase) -> None:
        self.spec = spec

    def check_all(self) -> None:
        self.invariant_5_2_po_spans_ops_and_contains_csc()
        self.invariant_5_3_stable_comparable_to_all()
        self.invariant_5_4_stabilized_totally_ordered()
        self.invariant_5_6_stable_values_unique()

    def __call__(self, *_args, **_kwargs) -> None:
        self.check_all()

    def invariant_5_2_po_spans_ops_and_contains_csc(self) -> None:
        ops_ids = self.spec.ops_ids
        if not self.spec.po.span() <= ops_ids:
            _fail("Invariant 5.2", "po mentions identifiers outside ops")
        csc = client_specified_constraints(self.spec.ops)
        if not csc <= set(self.spec.po.pairs):
            _fail("Invariant 5.2", "po does not contain the client-specified constraints")

    def invariant_5_3_stable_comparable_to_all(self) -> None:
        for x in self.spec.stabilized:
            for y in self.spec.ops:
                if not self.spec.po.comparable(x.id, y.id):
                    _fail("Invariant 5.3", f"stable {x.id} incomparable with {y.id}")

    def invariant_5_4_stabilized_totally_ordered(self) -> None:
        ids = [x.id for x in self.spec.stabilized]
        if not self.spec.po.totally_orders(ids):
            _fail("Invariant 5.4", "stabilized operations are not totally ordered by po")

    def invariant_5_6_stable_values_unique(self) -> None:
        from repro.core.orders import valset

        for x in self.spec.stabilized:
            values = valset(self.spec.data_type, x, self.spec.ops, self.spec.po, limit=64)
            if len(values) != 1:
                _fail("Invariant 5.6", f"stable operation {x.id} has non-unique value set {values}")
