"""End-to-end eventual-serializability checks on observed traces.

These helpers tie the Section 5.2 guarantees to the algorithm: the algorithm's
system-wide minimum labels provide the witness eventual total order, and the
trace recorded by the system (or by the simulator) is checked against it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algorithm.system import AlgorithmSystem
from repro.common import InvariantViolation, OperationId
from repro.spec.guarantees import (
    TraceRecord,
    check_all_responses_explained,
    check_eventual_total_order,
    check_strict_responses_explained,
)


def eventual_order_witness(system: AlgorithmSystem) -> List[OperationId]:
    """The eventual total order realised by the algorithm: the identifiers of
    every requested operation, ordered by system-wide minimum label.

    Operations that have not been done anywhere yet (no label) are placed at
    the end in a deterministic order; for a drained system every requested
    operation has a label.
    """
    ordered = system.eventual_order()
    seen = set(ordered)
    missing = sorted(
        (x.id for x in system.users.requested if x.id not in seen), key=repr
    )
    return ordered + missing


def check_system_trace(
    system: AlgorithmSystem,
    check_nonstrict: bool = False,
    search_limit: int = 5000,
) -> None:
    """Check the guarantees of Theorems 5.7/5.8 on the trace of *system*.

    * every strict response must be explained by the witness eventual total
      order (Theorem 5.8);
    * with ``check_nonstrict=True``, every response (strict or not) must be
      explained by *some* total order consistent with the client-specified
      constraints (Theorem 5.7) — this uses bounded search and is meant for
      small traces.

    Raises :class:`~repro.common.InvariantViolation` on failure.
    """
    trace = system.trace
    witness = eventual_order_witness(system)
    if not check_eventual_total_order(system.data_type, trace, witness):
        if not check_strict_responses_explained(
            system.data_type, trace, eventual_order=None, search_limit=search_limit
        ):
            raise InvariantViolation(
                "Theorem 5.8 violated: no eventual total order explains the strict responses"
            )
    if check_nonstrict:
        if not check_all_responses_explained(system.data_type, trace, search_limit):
            raise InvariantViolation(
                "Theorem 5.7 violated: some response has no explaining total order"
            )


def check_recorded_trace(
    data_type,
    trace: TraceRecord,
    witness: Optional[Sequence[OperationId]] = None,
    check_nonstrict: bool = False,
    search_limit: int = 5000,
) -> None:
    """Like :func:`check_system_trace` but for traces recorded outside an
    :class:`AlgorithmSystem` (e.g. by the discrete-event simulator)."""
    if not check_strict_responses_explained(
        data_type, trace, eventual_order=witness, search_limit=search_limit
    ):
        raise InvariantViolation(
            "Theorem 5.8 violated: strict responses not explained by the eventual order"
        )
    if check_nonstrict:
        if not check_all_responses_explained(data_type, trace, search_limit):
            raise InvariantViolation(
                "Theorem 5.7 violated: some response has no explaining total order"
            )
