"""Operational forward-simulation checks (Sections 5.3 and 8).

Two checks are provided:

* :class:`AlgorithmToSpecSimulation` — drives the algorithm system
  ``ESDS-Alg x Users`` and the specification automaton ESDS-II in lock-step,
  following the step correspondence of Theorem 8.4: each ``request``,
  ``do_it``, ``send_response`` (→ ``calculate``), ``response`` and
  ``receive_gossip`` (→ ``add_constraints`` + ``stabilize``*) step of the
  algorithm is matched by the corresponding specification actions, whose
  preconditions are checked, and the simulation relation F (Fig. 9) is
  verified after every step.

* :func:`check_esds2_implements_esds1` — explores random executions of
  ``ESDS-II x Users`` and matches them against ESDS-I using the relation G
  and step correspondence of Fig. 4 / Section 5.3 (a stabilize with "gaps"
  is matched by stabilizing the whole prefix in ESDS-I).
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Mapping, Optional, Tuple

from repro.algorithm.labels import label_sort_key
from repro.algorithm.system import AlgorithmSystem
from repro.automata.automaton import Action
from repro.automata.composition import Composition
from repro.automata.executions import RandomScheduler
from repro.automata.simulation import ForwardSimulationChecker, SimulationReport
from repro.common import SimulationRelationError
from repro.core.operations import OperationDescriptor
from repro.spec.esds1 import EsdsSpecI
from repro.spec.esds2 import EsdsSpecII
from repro.spec.users import Users


class AlgorithmToSpecSimulation:
    """Lock-step simulation check from ``ESDS-Alg x Users`` to ESDS-II.

    Use it exactly like :class:`~repro.algorithm.system.AlgorithmSystem`
    (``request`` / ``perform`` / ``run_random``); every step is mirrored on a
    private ESDS-II instance and the simulation relation is asserted.
    """

    def __init__(self, system: AlgorithmSystem, spec: Optional[EsdsSpecII] = None) -> None:
        self.system = system
        self.spec = spec if spec is not None else EsdsSpecII(system.data_type)
        self.abstract_steps = 0
        self.concrete_steps = 0
        self.check_relation()

    # -- driving ---------------------------------------------------------------

    def request(self, operation: OperationDescriptor) -> None:
        self.system.request(operation)
        self._spec_step(Action("request", operation=operation))
        self.concrete_steps += 1
        self.check_relation()

    def perform(self, kind: str, args: Tuple) -> Any:
        result = self.system.perform(kind, args)
        self._match(kind, args, result)
        self.concrete_steps += 1
        self.check_relation()
        return result

    def random_step(self, rng: random.Random, gossip_bias: float = 0.2) -> Optional[Tuple[str, Tuple]]:
        actions = self.system.enabled_actions()
        if not actions:
            return None
        non_gossip = [a for a in actions if a[0] != "send_gossip"]
        if non_gossip and rng.random() > gossip_bias:
            choice = rng.choice(non_gossip)
        else:
            choice = rng.choice(actions)
        self.perform(*choice)
        return choice

    def run_random(self, rng: random.Random, steps: int) -> int:
        performed = 0
        for _ in range(steps):
            if self.random_step(rng) is None:
                break
            performed += 1
        return performed

    # -- correspondence (Theorem 8.4) -------------------------------------------

    def _spec_step(self, action: Action) -> None:
        try:
            self.spec.step(action)
        except Exception as exc:
            raise SimulationRelationError(
                f"specification action {action!r} not enabled: {exc}"
            ) from exc
        self.abstract_steps += 1

    def _match(self, kind: str, args: Tuple, result: Any) -> None:
        if kind == "do_it":
            _replica, operation = args[0], args[1]
            waiting = any(operation in fe.wait for fe in self.system.frontends.values())
            if waiting:
                new_po = self.system.partial_order()
                self._spec_step(Action("enter", operation=operation, new_po=new_po))
            return
        if kind == "send_response":
            message = result
            self._spec_step(
                Action("calculate", operation=message.operation, value=message.value)
            )
            return
        if kind == "response":
            operation = args[0]
            self._spec_step(Action("response", operation=operation, value=result))
            return
        if kind == "receive_gossip":
            new_po = self.system.partial_order()
            self._spec_step(Action("add_constraints", new_po=new_po))
            stable = sorted(
                self.system.stable_everywhere(),
                key=lambda x: label_sort_key(self.system.minlabel(x.id)),
            )
            for operation in stable:
                self._spec_step(Action("stabilize", operation=operation))
            return
        # send_request, receive_request, receive_response, send_gossip: no
        # specification step; the relation must be preserved unchanged.

    # -- the relation F (Fig. 9) --------------------------------------------------

    def check_relation(self) -> None:
        system, spec = self.system, self.spec

        concrete_wait = set()
        for frontend in system.frontends.values():
            concrete_wait |= frontend.wait
        if spec.wait != concrete_wait:
            raise SimulationRelationError("relation F: wait sets differ")

        concrete_rept = set()
        for client, frontend in system.frontends.items():
            concrete_rept |= frontend.rept
            concrete_rept |= system.potential_rept(client)
        if spec.rept != concrete_rept:
            raise SimulationRelationError("relation F: rept sets differ")

        if spec.ops != system.ops():
            raise SimulationRelationError("relation F: ops sets differ")

        system_po = system.partial_order()
        if not set(spec.po.pairs) <= set(system_po.pairs):
            raise SimulationRelationError("relation F: spec po not contained in algorithm po")

        if spec.stabilized != system.stable_everywhere():
            raise SimulationRelationError("relation F: stabilized sets differ")

    def report(self) -> SimulationReport:
        return SimulationReport(
            steps_checked=self.concrete_steps, abstract_steps_taken=self.abstract_steps
        )


# ---------------------------------------------------------------------------
# ESDS-II implements ESDS-I (Section 5.3, Fig. 4)
# ---------------------------------------------------------------------------


def _esds2_component(snapshot: Mapping[str, Any]) -> Mapping[str, Any]:
    if "ESDS-II" in snapshot:
        return snapshot["ESDS-II"]
    return snapshot


def _relation_g(concrete_state: Mapping[str, Any], abstract: EsdsSpecI) -> bool:
    spec2 = _esds2_component(concrete_state)
    return (
        abstract.wait == spec2["wait"]
        and abstract.rept == spec2["rept"]
        and abstract.ops == spec2["ops"]
        and abstract.po == spec2["po"]
        and abstract.stabilized >= spec2["stabilized"]
    )


def _correspondence_g(
    action: Action,
    pre_state: Mapping[str, Any],
    post_state: Mapping[str, Any],
    abstract: EsdsSpecI,
) -> List[Action]:
    pre = _esds2_component(pre_state)
    if action.kind == "enter":
        operation = action["operation"]
        if operation in pre["ops"]:
            # A repeated enter acts exactly like add_constraints.
            return [Action("add_constraints", new_po=action["new_po"])]
        return [action]
    if action.kind == "stabilize":
        operation = action["operation"]
        po = pre["po"]
        prefix = sorted(
            (
                y
                for y in pre["ops"]
                if y not in abstract.stabilized
                and (po.precedes(y.id, operation.id) or y == operation)
            ),
            key=lambda y: (len(po.predecessors(y.id, {z.id for z in pre["ops"]})), repr(y.id)),
        )
        return [Action("stabilize", operation=y) for y in prefix]
    return [action]


def check_esds2_implements_esds1(
    data_type,
    operation_factory: Callable,
    steps: int = 60,
    seed: int = 0,
) -> SimulationReport:
    """Explore ``ESDS-II x Users`` at random and verify, step by step, the
    forward simulation to ESDS-I (Fig. 4).  Returns the check report."""
    spec2 = EsdsSpecII(data_type)
    users = Users(operation_factory)
    composition = Composition([spec2, users], name="ESDS-II x Users")
    spec1 = EsdsSpecI(data_type)

    checker = ForwardSimulationChecker(
        abstract=spec1,
        correspondence=_correspondence_g,
        relation=_relation_g,
        external_kinds={"request", "response"},
    )
    scheduler = RandomScheduler(composition, seed=seed, record_snapshots=True)
    checker.check_start(scheduler.execution.snapshots[0])

    for _ in range(steps):
        pre = composition.snapshot()
        action = scheduler.step()
        if action is None:
            break
        post = composition.snapshot()
        checker.check_step(action, pre, post)
    return checker.report()
