"""Verification harness for the ESDS algorithm.

The paper proves the algorithm correct with a collection of invariants
(Section 7) and a forward simulation to the ESDS-II specification
(Section 8), plus a simulation from ESDS-II to ESDS-I (Section 5.3).  This
package turns those proofs into *runtime checks* that the test-suite runs
over randomly explored executions:

* :mod:`repro.verification.invariants` — every Section 4/7/8/10 invariant as
  a predicate over an :class:`~repro.algorithm.system.AlgorithmSystem`;
* :mod:`repro.verification.simulation_check` — lock-step forward-simulation
  checking from the algorithm to ESDS-II (Theorem 8.4 / Fig. 9) and from
  ESDS-II to ESDS-I (Fig. 4);
* :mod:`repro.verification.serializability` — end-to-end trace checks of the
  Section 5.2 guarantees using the algorithm's minimum-label order as the
  witness for the eventual total order.
"""

from repro.verification.invariants import AlgorithmInvariantChecker, SpecInvariantChecker
from repro.verification.simulation_check import (
    AlgorithmToSpecSimulation,
    check_esds2_implements_esds1,
)
from repro.verification.serializability import (
    check_system_trace,
    eventual_order_witness,
)

__all__ = [
    "AlgorithmInvariantChecker",
    "SpecInvariantChecker",
    "AlgorithmToSpecSimulation",
    "check_esds2_implements_esds1",
    "check_system_trace",
    "eventual_order_witness",
]
