"""A real networked key-value service on the asyncio runtime.

Run with::

    PYTHONPATH=src python examples/net_kv.py

Everything else in ``examples/`` drives the *simulated* cluster under
virtual time.  This demo runs the same ESDS algorithm on
:class:`repro.net.runtime.NetCluster`: one asyncio task per replica, TCP
sockets on the loopback interface, and every message — request, response,
gossip, pull, transfer — encoded through the compact binary wire codec
(:mod:`repro.net.codec`).

The script starts a four-replica keyed counter service with delta gossip,
performs a small session (writes, read-your-writes via ``prev``, a strict
read), crashes and recovers a replica mid-session, then pushes a concurrent
zipfian load through it with the load driver and prints throughput, latency
percentiles and the *actual bytes per message kind* that crossed the wire.
"""

import asyncio

from repro.datatypes.counter import CounterType
from repro.net.driver import LoadSpec, run_load
from repro.net.runtime import NetCluster, NetParams
from repro.service.keyed import KeyedStore


async def session_demo(cluster: NetCluster) -> None:
    print("=== keyed session over TCP (read-your-writes via prev) ===")
    visits = {}
    for user in ("ada", "grace", "ada", "ada", "grace"):
        operation = cluster.make_operation(
            "frontend-1",
            KeyedStore.at(user, CounterType.increment()),
            prev=[visits[user]] if user in visits else [],
        )
        count = await cluster.execute(operation)
        visits[user] = operation.id
        print(f"  visit from {user!r:>8}: count now {count}")

    # A strict read blocks until its position in the eventual total order
    # is stable — the value is consistent with the final serialization.
    total = await cluster.submit(
        "frontend-2",
        KeyedStore.at("ada", CounterType.read()),
        prev=[visits["ada"]],
        strict=True,
    )
    print(f"  strict read of 'ada' from another front end: {total}\n")


async def failure_demo(cluster: NetCluster) -> None:
    print("=== crash and recovery with live traffic ===")
    await cluster.crash_replica("r1", volatile_memory=True)
    print("  r1 crashed (volatile memory lost)")
    for _ in range(3):
        await cluster.submit("frontend-1", KeyedStore.at("edsger", CounterType.increment()))
    await cluster.recover_replica("r1")
    print("  r1 recovered from stable storage (fresh TCP port)")
    await cluster.quiesce(timeout=20.0)
    value = await cluster.submit("frontend-2", KeyedStore.at("edsger", CounterType.read()))
    print(f"  read of 'edsger' after recovery: {value}\n")


async def load_demo(cluster: NetCluster) -> None:
    print("=== concurrent zipfian load (10 clients, closed loop) ===")
    spec = LoadSpec(operations_per_client=50, mode="closed", num_keys=32, seed=3)
    report = await run_load(cluster, spec)
    print("\n".join("  " + line for line in report.format().splitlines()))
    await cluster.quiesce(timeout=20.0)
    print("  converged: every replica replays the same order\n")


async def main() -> None:
    params = NetParams(gossip_period=0.02, delta_gossip=True, fast_core=True)
    cluster = NetCluster(
        KeyedStore(CounterType()),
        num_replicas=4,
        client_ids=tuple(["frontend-1", "frontend-2"] + [f"c{i}" for i in range(8)]),
        params=params,
        transport="tcp",
    )
    async with cluster:
        await session_demo(cluster)
        await failure_demo(cluster)
        await load_demo(cluster)


if __name__ == "__main__":
    asyncio.run(main())
