"""A replicated DNS-like directory service (the paper's Section 11.2 use case).

Run with::

    python examples/directory_service.py

An administrator binds names and sets attributes; resolvers perform fast
(possibly slightly stale) lookups most of the time, and strict lookups when
they need the authoritative answer.  Attribute updates carry the name's
creation operation in their ``prev`` sets so they can never be applied to a
not-yet-existing name — exactly the client convention the paper describes.
"""

from repro import DirectoryService, DirectoryType, SimulatedCluster, SimulationParams


def main() -> None:
    params = SimulationParams(df=1.0, dg=2.0, gossip_period=3.0)
    cluster = SimulatedCluster(
        DirectoryType(),
        num_replicas=5,
        client_ids=["admin", "resolver-eu", "resolver-us"],
        params=params,
        seed=7,
    )

    admin = DirectoryService(cluster, "admin")
    resolver_eu = DirectoryService(cluster, "resolver-eu")
    resolver_us = DirectoryService(cluster, "resolver-us")

    print("=== administrator populates the directory ===")
    for host, ip in [
        ("www.example.org", "192.0.2.10"),
        ("mail.example.org", "192.0.2.25"),
        ("db.example.org", "192.0.2.40"),
    ]:
        admin.bind(host, {"ip": ip, "ttl": 300})
        print(f"  bound {host} -> {ip}")

    print("\n=== resolvers issue fast (non-strict) lookups ===")
    for resolver_name, resolver in [("eu", resolver_eu), ("us", resolver_us)]:
        answer = resolver.lookup("www.example.org", read_your_writes=False)
        print(f"  resolver-{resolver_name}: www.example.org -> {answer}")

    print("\n=== an expedient (strict) update and a consistent lookup ===")
    admin.set_attribute("www.example.org", "ip", "192.0.2.99")
    stale = resolver_eu.lookup("www.example.org", read_your_writes=False)
    fresh = resolver_eu.lookup("www.example.org", consistent=True)
    print(f"  fast lookup right after the update: {stale}")
    print(f"  strict lookup (eventual order):     {fresh}")

    print("\n=== directory listing ===")
    names = resolver_us.list_names(consistent=True)
    print(f"  bound names: {', '.join(names)}")

    summary = cluster.metrics.latency_summary()
    strict_summary = cluster.metrics.latency_summary("strict")
    print(
        f"\ncompleted {cluster.metrics.completed} operations; "
        f"mean latency {summary.mean:.2f} "
        f"(strict-only mean {strict_summary.mean:.2f})"
    )


if __name__ == "__main__":
    main()
