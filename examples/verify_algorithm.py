"""Run the paper's correctness argument as executable checks.

Run with::

    python examples/verify_algorithm.py

This drives a random execution of the full algorithm ``ESDS-Alg x Users``
while simultaneously:

* checking every Section 7/8 invariant in every reachable state visited,
* matching every step against the ESDS-II specification automaton with the
  forward-simulation correspondence of Theorem 8.4,
* and finally checking the observed trace against the Theorem 5.7/5.8
  guarantees using the minimum-label order as the witness.
"""

import random

from repro import AlgorithmInvariantChecker, AlgorithmSystem, CounterType, check_system_trace
from repro.common import OperationIdGenerator
from repro.core.operations import make_operation
from repro.verification.simulation_check import (
    AlgorithmToSpecSimulation,
    check_esds2_implements_esds1,
)


def main(seed: int = 2026) -> None:
    rng = random.Random(seed)
    system = AlgorithmSystem(CounterType(), ["r1", "r2", "r3"], ["alice", "bob"])
    lockstep = AlgorithmToSpecSimulation(system)
    invariants = AlgorithmInvariantChecker(system)

    generators = {c: OperationIdGenerator(c) for c in ("alice", "bob")}
    history = []
    print("submitting 6 random operations and exploring the algorithm...")
    for index in range(6):
        client = rng.choice(["alice", "bob"])
        operator = rng.choice([CounterType.increment(), CounterType.add(5), CounterType.read()])
        prev = [history[-1].id] if history and rng.random() < 0.5 else []
        operation = make_operation(
            operator, generators[client].fresh(), prev=prev, strict=rng.random() < 0.3
        )
        history.append(operation)
        lockstep.request(operation)
        for _ in range(rng.randint(2, 6)):
            if lockstep.random_step(rng) is None:
                break
            invariants.check_all()

    # ``send_gossip`` is always enabled, so "run until no action is enabled"
    # would never terminate; run until every request is answered instead
    # (with a generous step cap as a safety net).
    steps = 0
    while len(system.trace.responses) < len(history) and steps < 5000:
        if lockstep.random_step(rng) is None:
            break
        invariants.check_all()
        steps += 1

    print(f"  {lockstep.concrete_steps} algorithm steps matched by "
          f"{lockstep.abstract_steps} ESDS-II steps")
    print(f"  {len(system.trace.responses)} responses delivered; all invariants held")

    check_system_trace(system, check_nonstrict=True)
    print("  trace satisfies Theorems 5.7 and 5.8 (eventual serializability)")

    def factory(inner_rng, requested):
        if len(requested) >= 5:
            return None
        gen = OperationIdGenerator("spec-client", start=len(requested))
        return make_operation(CounterType.increment(), gen.fresh(),
                              strict=inner_rng.random() < 0.3)

    report = check_esds2_implements_esds1(CounterType(), factory, steps=60, seed=seed)
    print(f"  ESDS-II -> ESDS-I simulation: {report}")
    print("\nall checks passed")


if __name__ == "__main__":
    main()
