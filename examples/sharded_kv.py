"""Sharded key-value service: many objects, many shards, one seeded world.

Run with::

    python examples/sharded_kv.py

The paper's algorithm replicates a *single* object; the service layer grows
it into a multi-tenant keyed store by consistent-hashing keys across
independent ESDS replica groups.  This example runs a small "user profile"
service (a counter per user) on four shards, shows per-key routing and
read-your-writes via ``prev``, then pushes a zipfian workload through the
deployment and prints the per-shard load breakdown.
"""

from repro import (
    CounterType,
    KeyedWorkloadSpec,
    ShardedCluster,
    SimulationParams,
    run_keyed_workload,
)


def routing_demo(cluster: ShardedCluster) -> None:
    print("=== routing: every key lives on exactly one shard ===")
    for user in ("ada", "grace", "edsger", "barbara"):
        print(f"  key {user!r:>10} -> shard {cluster.shard_of(user)}")
    print()

    print("=== per-key read-your-writes across shards ===")
    visits = {}
    for user in ("ada", "grace", "ada", "ada", "grace"):
        operation, count = cluster.execute(
            "frontend-1", user, CounterType.increment(),
            prev=[visits[user]] if user in visits else [],
        )
        visits[user] = operation.id
        print(f"  visit from {user!r:>8}: count now {count} "
              f"(shard {cluster.shard_of(user)})")
    # A strict read serializes against the eventual total order of its shard.
    _, total = cluster.execute(
        "frontend-2", "ada", CounterType.read(), prev=[visits["ada"]], strict=True
    )
    print(f"  strict read of 'ada' from another front end: {total}\n")


def workload_demo(seed: int = 11) -> None:
    print("=== zipfian workload on 4 shards (hot keys skew the load) ===")
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0,
                              service_time=0.2, batch_gossip=True)
    cluster = ShardedCluster(
        CounterType(), num_shards=4, replicas_per_shard=3,
        client_ids=[f"frontend-{i}" for i in range(4)], params=params, seed=seed,
    )
    spec = KeyedWorkloadSpec(
        operations_per_client=40, mean_interarrival=0.5, strict_fraction=0.1,
        num_keys=48, key_distribution="zipfian", zipf_exponent=1.4,
        prev_policy="last_on_key",
    )
    result = run_keyed_workload(cluster, spec, seed=seed + 1)
    print(f"  completed {result.metrics.completed}/{result.submitted} operations, "
          f"total throughput {result.throughput:.2f} ops/time")
    for shard, throughput in sorted(result.throughput_by_shard().items()):
        completed = result.metrics.completed_by_shard()[shard]
        print(f"    {shard}: {completed:4d} ops  ({throughput:.2f} ops/time)")
    print(f"  peak/mean imbalance: {result.metrics.imbalance():.2f}")
    print(f"  mean latency: {result.mean_latency:.2f} "
          f"(p95 {result.latency_summary().p95:.2f})")
    # Per-shard safety: each shard's trace is explained by its own
    # minimum-label eventual order (Theorem 5.8).
    cluster.check_traces()
    print("  per-shard eventual-serializability checks passed\n")


if __name__ == "__main__":
    demo_cluster = ShardedCluster(
        CounterType(), num_shards=4, replicas_per_shard=3,
        client_ids=["frontend-1", "frontend-2"],
        params=SimulationParams(df=1.0, dg=1.0, gossip_period=2.0),
        seed=7,
    )
    routing_demo(demo_cluster)
    workload_demo()
