"""Quickstart: an eventually-serializable register and counter.

Run with::

    python examples/quickstart.py

Demonstrates the three kinds of requests the service distinguishes
(Theorem 9.3): non-strict with no dependencies (fast, possibly stale),
non-strict with a ``prev`` dependency (read-your-writes), and strict
(serialized in the eventual total order before the response is returned).
"""

from repro import (
    CounterType,
    RegisterType,
    SimulatedCluster,
    SimulationParams,
    TimingAssumptions,
    response_time_bound,
)


def register_demo() -> None:
    print("=== register: read-your-writes via prev sets ===")
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)
    cluster = SimulatedCluster(
        RegisterType(), num_replicas=3, client_ids=["alice", "bob"], params=params
    )

    write, _ = cluster.execute("alice", RegisterType.write("hello world"))
    print(f"alice wrote the register (operation {write.id})")

    # A fast read with no constraints may or may not see the write yet.
    _, fast = cluster.execute("bob", RegisterType.read())
    print(f"bob's unconstrained read returned: {fast!r}")

    # A read that names the write in its prev set is guaranteed to see it.
    _, causal = cluster.execute("bob", RegisterType.read(), prev=[write.id])
    print(f"bob's dependent read returned:     {causal!r}")

    # A strict read is additionally consistent with the eventual total order.
    _, strict = cluster.execute("bob", RegisterType.read(), prev=[write.id], strict=True)
    print(f"bob's strict read returned:        {strict!r}\n")


def counter_demo() -> None:
    print("=== counter: latency of the three operation classes ===")
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)
    cluster = SimulatedCluster(
        CounterType(), num_replicas=4, client_ids=["alice"], params=params
    )
    timing = TimingAssumptions(df=params.df, dg=params.dg, gossip_period=params.gossip_period)

    previous = None
    for strict in (False, False, True):
        prev = [previous.id] if previous is not None else []
        start = cluster.now
        operation, value = cluster.execute(
            "alice", CounterType.increment(), prev=prev, strict=strict
        )
        latency = cluster.now - start
        bound = response_time_bound(operation, timing)
        kind = "strict" if strict else ("dependent" if prev else "plain")
        print(
            f"  {kind:>9} increment -> value {value}, latency {latency:.1f} "
            f"(Theorem 9.3 bound {bound:.1f})"
        )
        previous = operation
    print()


if __name__ == "__main__":
    register_demo()
    counter_demo()
