"""A replicated bank account surviving a replica crash.

Run with::

    python examples/bank_with_failures.py

Deposits commute, so they are submitted as cheap non-strict operations;
withdrawals and audits need the eventual total order, so they are strict.
Halfway through, one replica crashes (its state survives on disk — the
paper's non-volatile-memory case, indistinguishable from message delay) and
later recovers — the service keeps answering non-strict requests throughout, and every strict response is still explained
by the eventual total order (checked at the end with the trace checker).
"""

from repro import (
    BankAccountType,
    FaultSchedule,
    ReplicaCrash,
    SimulatedCluster,
    SimulationParams,
)
from repro.verification.serializability import check_recorded_trace


def main() -> None:
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, retransmit_interval=4.0)
    cluster = SimulatedCluster(
        BankAccountType(),
        num_replicas=3,
        client_ids=["teller-1", "teller-2", "auditor"],
        params=params,
        seed=3,
    )

    # Crash replica r1 at t=8 (state kept on disk) and bring it back at t=20.
    FaultSchedule().add(
        ReplicaCrash("r1", at=8.0, recover_at=20.0, volatile_memory=False)
    ).install(cluster)
    print("fault schedule: replica r1 crashes at t=8 and recovers at t=20\n")

    print("=== tellers make deposits (non-strict, commuting) ===")
    for index in range(6):
        teller = "teller-1" if index % 2 == 0 else "teller-2"
        _, balance_seen = cluster.execute(teller, BankAccountType.deposit(100))
        print(f"  t={cluster.now:5.1f}  {teller} deposited 100 "
              f"(balance seen locally: {balance_seen})")

    print("\n=== a withdrawal must be strict (it can fail) ===")
    _, after_withdrawal = cluster.execute("teller-1", BankAccountType.withdraw(450), strict=True)
    print(f"  t={cluster.now:5.1f}  withdraw 450 -> balance {after_withdrawal}")

    print("\n=== the auditor takes a strict balance reading ===")
    _, audited = cluster.execute("auditor", BankAccountType.balance(), strict=True)
    print(f"  t={cluster.now:5.1f}  audited balance: {audited}")

    expected = 6 * 100 - 450
    assert audited == expected, f"audit mismatch: {audited} != {expected}"

    check_recorded_trace(cluster.data_type, cluster.trace, witness=cluster.eventual_order())
    print("\nevery strict response is explained by the eventual total order "
          "(Theorem 5.8 check passed)")
    strict = cluster.metrics.latency_summary("strict")
    nonstrict = cluster.metrics.latency_summary("nonstrict_no_prev")
    print(f"mean latency: non-strict {nonstrict.mean:.2f}, strict {strict.mean:.2f}")


if __name__ == "__main__":
    main()
