"""Setup shim for environments without PEP 517 build isolation support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Eventually-Serializable Data Services (Fekete, Gupta, Luchangco, Lynch, "
        "Shvartsman; PODC 1996 / TCS 1999) — specification, lazy-replication "
        "algorithm, verification harness, simulator and benchmarks"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
