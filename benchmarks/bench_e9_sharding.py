"""E9 — throughput scaling with the number of shards (service layer).

The paper's algorithm manages one replicated object; the sharded service
layer partitions a keyspace across independent ESDS replica groups.  This
experiment fixes the per-shard deployment (replicas, service time) and the
per-client offered load, scales the client population with the shard count,
and measures total committed-ops throughput: because shards never exchange
messages, capacity should grow monotonically from 1 to 4 shards — the
multiplicative scaling axis the single-object experiments (E1) cannot reach,
since adding replicas to one object adds gossip work along with capacity.

A second table contrasts uniform and zipfian key popularity at a fixed shard
count: skew concentrates load on the shard owning the hot keys, visible in
the per-shard throughput breakdown and the peak-to-mean imbalance metric.
"""

from repro.datatypes import CounterType
from repro.sim.cluster import SimulationParams
from repro.sim.sharded import ShardedCluster
from repro.sim.workload import KeyedWorkloadSpec, run_keyed_workload

from conftest import emit_bench_json, monotonically_nondecreasing, print_table

REPLICAS_PER_SHARD = 3
CLIENTS_PER_SHARD = 3
OPS_PER_CLIENT = 30
INTERARRIVAL = 0.8      # per client; offered load scales with the shard count
SERVICE_TIME = 0.4      # saturates a shard at ~2.5 ops/time unit
NUM_KEYS = 64


def run_shard_count(num_shards: int, seed: int = 0,
                    key_distribution: str = "uniform") -> "KeyedWorkloadResult":
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0,
        service_time=SERVICE_TIME, frontend_policy="affinity",
        batch_gossip=True,
    )
    clients = [f"c{i}" for i in range(CLIENTS_PER_SHARD * num_shards)]
    cluster = ShardedCluster(
        CounterType(), num_shards=num_shards, replicas_per_shard=REPLICAS_PER_SHARD,
        client_ids=clients, params=params, seed=seed,
    )
    spec = KeyedWorkloadSpec(
        operations_per_client=OPS_PER_CLIENT, mean_interarrival=INTERARRIVAL,
        strict_fraction=0.0, num_keys=NUM_KEYS, key_distribution=key_distribution,
        zipf_exponent=1.5,
    )
    return run_keyed_workload(cluster, spec, seed=seed + 1, drain_time=2_000.0)


def test_e9_throughput_scales_with_shards(benchmark):
    counts = [1, 2, 4]
    results = {n: run_shard_count(n) for n in counts}

    rows = []
    for n in counts:
        result = results[n]
        speedup = result.throughput / results[counts[0]].throughput
        rows.append((
            str(n),
            f"{result.throughput:.2f}",
            f"{speedup:.2f}x",
            f"{result.metrics.imbalance():.2f}",
        ))
    print_table(
        "E9: total committed-ops throughput vs number of shards "
        f"({REPLICAS_PER_SHARD} replicas/shard, saturating uniform-key load)",
        ["shards", "throughput (ops/time)", "vs 1 shard", "peak/mean"],
        rows,
    )

    # Every submitted operation must complete (the drain phase is generous).
    for result in results.values():
        assert result.cluster.outstanding_operations() == 0

    # The acceptance shape: total throughput increases monotonically from
    # 1 to 4 shards at fixed replicas-per-shard.
    series = [results[n].throughput for n in counts]
    assert monotonically_nondecreasing(series, slack=0.0)
    assert series[-1] > series[0] * 2.0  # 4 shards ≥ 2x one shard

    # Key skew: zipfian keys concentrate load on fewer shards.
    skewed = run_shard_count(4, key_distribution="zipfian")
    uniform = results[4]
    per_shard = skewed.throughput_by_shard()
    print_table(
        "E9b: per-shard throughput at 4 shards, uniform vs zipfian keys",
        ["shard", "uniform", "zipfian"],
        [
            (sid, f"{uniform.throughput_by_shard()[sid]:.2f}", f"{per_shard[sid]:.2f}")
            for sid in sorted(per_shard)
        ],
    )
    print(f"imbalance: uniform {uniform.metrics.imbalance():.2f}, "
          f"zipfian {skewed.metrics.imbalance():.2f}")
    assert skewed.metrics.imbalance() >= uniform.metrics.imbalance()

    emit_bench_json("E9", {
        "throughput_by_shards": {n: results[n].throughput for n in counts},
        "speedup_1_to_4": series[-1] / series[0],
        "imbalance_uniform": uniform.metrics.imbalance(),
        "imbalance_zipfian": skewed.metrics.imbalance(),
        "peak_tracked_ops": {n: results[n].metrics.peak_tracked_ops() for n in counts},
    })

    # Wall-clock measurement of one representative configuration.
    benchmark(run_shard_count, 2, 1)
