"""E3 — the response-time bound table of Theorem 9.3.

Under the timing assumptions (deterministic worst-case delays ``df``, ``dg``
and gossip period ``g``), every response must arrive within::

    delta = 2*df                    non-strict, empty prev
    delta = 2*df + (g + dg)         non-strict, non-empty prev
    delta = 2*df + 3*(g + dg)       strict

The benchmark runs a mixed workload, prints the bound vs the measured maximum
and mean per class, and asserts that no response violates its bound.
"""

from repro.analysis.bounds import (
    TimingAssumptions,
    check_latency_records_against_bounds,
    summarize_bounds_vs_measured,
)
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, print_table

PARAMS = SimulationParams(df=1.0, dg=2.0, gossip_period=3.0, frontend_policy="round_robin")
TIMING = TimingAssumptions(df=PARAMS.df, dg=PARAMS.dg, gossip_period=PARAMS.gossip_period)


def run_mixed_workload(seed: int = 0):
    cluster = SimulatedCluster(
        CounterType(), num_replicas=4,
        client_ids=[f"c{i}" for i in range(4)], params=PARAMS, seed=seed,
    )
    spec = WorkloadSpec(operations_per_client=25, mean_interarrival=1.0,
                        strict_fraction=0.3, prev_policy="random_own")
    result = run_workload(cluster, spec, seed=seed + 3)
    return result


def test_e3_all_responses_within_theorem_9_3_bounds(benchmark):
    result = run_mixed_workload()
    summary = summarize_bounds_vs_measured(result.metrics.records, TIMING)

    rows = []
    for name, label in [
        ("nonstrict_no_prev", "non-strict, prev = {}"),
        ("nonstrict_with_prev", "non-strict, prev != {}"),
        ("strict", "strict"),
    ]:
        entry = summary[name]
        rows.append((
            label,
            f"{entry['bound']:.1f}",
            f"{entry['max']:.1f}" if entry["count"] else "-",
            f"{entry['mean']:.2f}" if entry["count"] else "-",
            int(entry["count"]),
        ))
    print_table(
        "E3: Theorem 9.3 bounds vs measured latency (df=1, dg=2, g=3)",
        ["operation class", "bound delta(x)", "measured max", "measured mean", "count"],
        rows,
    )

    violations = check_latency_records_against_bounds(result.metrics.records, TIMING)
    assert violations == []
    # All three classes must actually be exercised.
    assert all(summary[name]["count"] > 0 for name in summary)
    # The class ordering of the bound table is reflected in the measurements.
    assert summary["nonstrict_no_prev"]["max"] <= summary["strict"]["bound"]

    emit_bench_json("E3", {
        "bound_violations": len(violations),
        "per_class": {
            name: {"bound": entry["bound"], "max": entry["max"],
                   "mean": entry["mean"], "count": entry["count"]}
            for name, entry in summary.items()
        },
        "throughput": result.throughput,
    })

    benchmark(run_mixed_workload, 1)
