"""E10 — bounded-memory replicas via stability-driven checkpoint compaction.

The base algorithm keeps ``rcvd`` / ``done[i]`` / ``stable[i]`` / label
records for every operation ever seen, so per-gossip set work and replica
memory grow with the *total history*: a long-running deployment degrades
quadratically in wall-clock terms even when the offered load is constant.
Checkpoint compaction (:mod:`repro.algorithm.checkpoint`) folds the
stable-everywhere prefix into a base state and drops those records, bounding
the tracked state by the *unstable suffix* — whose size depends on the
gossip period and offered load, not on how long the service has been up.

Two tables:

* **E10a** runs the same seeded workload with and without compaction at
  growing history lengths: responses are identical operation for operation,
  the uncompacted baseline's peak tracked state equals the total history and
  its wall-clock time grows superlinearly, while the compacted run's peak
  state stays flat and its wall-clock time stays proportional to the load.
* **E10b** is the long-run demonstration (50k operations by default; set
  ``E10_LONG_OPS`` to resize): sustained throughput with a peak tracked
  state hundreds of times smaller than the history.
"""

import os
import time

from repro.algorithm.checkpoint import CompactionPolicy
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, print_table

NUM_REPLICAS = 3
CLIENTS = [f"c{i}" for i in range(4)]
INTERARRIVAL = 0.25
STRICT_FRACTION = 0.05
#: Compaction settings for the compacted arm: amortize folds over batches of
#: 32, force a sweep every 16 time units (8 gossip periods), and retain only
#: the newest 256 compacted values — the retransmit-answering window.  A
#: finite retention is what keeps the checkpoint itself (and the periodic
#: full-state catch-up messages that carry it) bounded; ``None`` would grow
#: the value ledger with the history.
POLICY = CompactionPolicy(min_batch=32, value_retention=256)
COMPACTION_INTERVAL = 16.0

LONG_RUN_OPS = int(os.environ.get("E10_LONG_OPS", "50000"))
#: Wall-clock comparisons are meaningful on a quiet machine but flaky on
#: noisy shared CI runners; set E10_TIMING_ASSERTS=0 to keep only the
#: deterministic assertions (peak tracked state, identical responses).
TIMING_ASSERTS = os.environ.get("E10_TIMING_ASSERTS", "1") == "1"


def run_history(total_ops: int, compaction: bool, seed: int = 1, fast: bool = False):
    """One seeded run; all arms share every other parameter (delta gossip,
    incremental replay, batched gossip — the PR 1 hot path).  ``fast``
    switches the replica variant to :class:`FastReplicaCore`; the execution
    (responses, witness, folds) is identical by contract, only the wall
    clock moves."""
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0,
        delta_gossip=True, incremental_replay=True, batch_gossip=True,
        fast_core=fast,
        compaction=POLICY if compaction else None,
        compaction_interval=COMPACTION_INTERVAL if compaction else None,
    )
    cluster = SimulatedCluster(CounterType(), NUM_REPLICAS, CLIENTS,
                               params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=total_ops // len(CLIENTS),
                        mean_interarrival=INTERARRIVAL,
                        strict_fraction=STRICT_FRACTION)
    started = time.perf_counter()
    result = run_workload(cluster, spec, seed=seed + 1)
    wall = time.perf_counter() - started
    counters = cluster.network.counters
    return {
        "cluster": cluster,
        "result": result,
        "wall": wall,
        "wall_ops_per_sec": result.metrics.completed / wall,
        "peak_tracked": cluster.metrics.peak_tracked_ops(),
        "compacted": len(cluster.compacted_prefix),
        "messages": counters.total(),
        "gossip_payload": counters.gossip_payload,
        "value_applications": cluster.total_value_applications(),
    }


def test_e10_compaction_bounds_state_and_sustains_throughput():
    sizes = [1000, 2000, 4000]
    outcomes = {}
    rows = []
    for total in sizes:
        plain = run_history(total, compaction=False)
        compacted = run_history(total, compaction=True)
        fast = run_history(total, compaction=True, fast=True)
        outcomes[total] = (plain, compacted, fast)
        rows.append((
            total,
            plain["peak_tracked"],
            compacted["peak_tracked"],
            f"{plain['wall']:.2f}s",
            f"{compacted['wall']:.2f}s",
            f"{fast['wall']:.2f}s",
            f"{compacted['wall_ops_per_sec']:.0f}",
            f"{fast['wall_ops_per_sec']:.0f}",
        ))
    print_table(
        "E10a: peak tracked ops and wall-clock, uncompacted vs compacted "
        f"vs fast core ({NUM_REPLICAS} replicas, identical seeded load)",
        ["history", "peak tracked (plain)", "peak tracked (compacted)",
         "wall (plain)", "wall (compacted)", "wall (fast)",
         "ops/s (compacted)", "ops/s (fast)"],
        rows,
    )

    for total, (plain, compacted, fast) in outcomes.items():
        # Identical responses, operation for operation — compaction and the
        # fast core are optimizations, not semantic changes.
        assert plain["cluster"].responded == compacted["cluster"].responded
        assert fast["cluster"].responded == compacted["cluster"].responded
        assert fast["cluster"].eventual_order() == compacted["cluster"].eventual_order()
        assert plain["result"].metrics.completed == total
        # The baseline tracks the whole history; the compacted run must not,
        # and the fast core changes no algorithmic event counts.
        assert plain["peak_tracked"] == total
        assert compacted["compacted"] > 0
        assert fast["peak_tracked"] == compacted["peak_tracked"]
        assert fast["compacted"] == compacted["compacted"]

    # Bounded memory: the compacted peak is set by the unstable-suffix
    # window, so it must NOT grow with the history length (allow jitter).
    peaks = [outcomes[total][1]["peak_tracked"] for total in sizes]
    assert max(peaks) < sizes[0] // 2, f"compacted peak {peaks} is not bounded"
    assert max(peaks) <= min(peaks) * 2, f"compacted peak {peaks} grows with history"

    # Equal or better throughput: at every size the compacted run finishes
    # the same simulated workload in no more wall-clock time (the margin is
    # several-fold by the largest size; 1.0x would already pass the bar).
    # Skippable via E10_TIMING_ASSERTS=0 for noisy shared runners.
    largest = sizes[-1]
    plain, compacted, fast = outcomes[largest]
    if TIMING_ASSERTS:
        assert compacted["wall"] <= plain["wall"], (
            f"compaction slowed the run down: {compacted['wall']:.2f}s vs "
            f"{plain['wall']:.2f}s at {largest} ops"
        )
        # And the baseline actually degrades: its per-op cost at 4x history
        # is clearly superlinear while the compacted run stays ~linear.
        plain_cost_small = outcomes[sizes[0]][0]["wall"] / sizes[0]
        plain_cost_large = plain["wall"] / largest
        compacted_cost_small = outcomes[sizes[0]][1]["wall"] / sizes[0]
        compacted_cost_large = compacted["wall"] / largest
        assert plain_cost_large > 1.5 * plain_cost_small
        assert compacted_cost_large < 2.0 * compacted_cost_small
        # The fast core must actually be faster on the same execution (the
        # in-process ratio is immune to machine speed, just not to noise —
        # hence the generous bar; the regression gate holds the band).
        assert fast["wall"] < compacted["wall"], (
            f"fast core slower than base: {fast['wall']:.2f}s vs "
            f"{compacted['wall']:.2f}s at {largest} ops"
        )

    emit_bench_json("E10", {
        "history_sizes": sizes,
        "peak_tracked_plain": {t: outcomes[t][0]["peak_tracked"] for t in sizes},
        "peak_tracked_compacted": {t: outcomes[t][1]["peak_tracked"] for t in sizes},
        "wall_seconds_plain": {t: outcomes[t][0]["wall"] for t in sizes},
        "wall_seconds_compacted": {t: outcomes[t][1]["wall"] for t in sizes},
        "wall_seconds_fast": {t: outcomes[t][2]["wall"] for t in sizes},
        "ops_per_sec_plain": {t: outcomes[t][0]["wall_ops_per_sec"] for t in sizes},
        "ops_per_sec_compacted": {t: outcomes[t][1]["wall_ops_per_sec"] for t in sizes},
        "ops_per_sec_fast": {t: outcomes[t][2]["wall_ops_per_sec"] for t in sizes},
        "fast_core_speedup": {
            t: outcomes[t][1]["wall"] / outcomes[t][2]["wall"] for t in sizes
        },
        "messages": {t: outcomes[t][1]["messages"] for t in sizes},
        "gossip_payload": {t: outcomes[t][1]["gossip_payload"] for t in sizes},
    })


def test_e10_long_run_keeps_memory_flat(benchmark):
    """The headline long run: ≥50k operations (the uncompacted baseline is
    two orders of magnitude slower here and is not run), peak tracked state
    bounded by the unstable-suffix window — under 1% of the history.  The
    same seeded run repeats on the fast core: identical responses and fold
    counts, several-fold wall-clock speedup."""
    outcome = run_history(LONG_RUN_OPS, compaction=True, seed=5)
    fast = run_history(LONG_RUN_OPS, compaction=True, seed=5, fast=True)
    cluster = outcome["cluster"]
    assert outcome["result"].metrics.completed == LONG_RUN_OPS

    # Execution identity of the fast core at full scale: every response,
    # the witness order and the fold accounting match the base run.
    assert fast["cluster"].responded == cluster.responded
    assert fast["cluster"].eventual_order() == cluster.eventual_order()
    assert fast["peak_tracked"] == outcome["peak_tracked"]
    assert fast["compacted"] == outcome["compacted"]

    speedup = outcome["wall"] / fast["wall"]
    per_replica_peak = dict(cluster.metrics.tracked_ops_peak)
    print_table(
        f"E10b: long run, {LONG_RUN_OPS} operations with compaction",
        ["measurement", "value"],
        [
            ("operations completed", outcome["result"].metrics.completed),
            ("wall-clock ops/s (base core)", f"{outcome['wall_ops_per_sec']:.0f}"),
            ("wall-clock ops/s (fast core)", f"{fast['wall_ops_per_sec']:.0f}"),
            ("fast-core speedup", f"{speedup:.2f}x"),
            ("peak tracked ops (worst replica)", outcome["peak_tracked"]),
            ("operations folded into checkpoints", outcome["compacted"]),
            ("checkpoint id-summary intervals",
             max(r.checkpoint.ids.interval_count for r in cluster.replicas.values())),
            ("per-replica peaks", per_replica_peak),
        ],
    )

    # Bounded memory at scale: the peak tracked state is a tiny fraction of
    # the history (the bound is the suffix window, not the run length).
    assert outcome["peak_tracked"] < max(LONG_RUN_OPS // 100, 500)
    # Nearly everything was eventually folded, into a summary whose size is
    # per-client intervals, not per-operation records.  Per-shard-contiguous
    # minting keeps the summary at O(clients) intervals.
    assert outcome["compacted"] > 0.95 * LONG_RUN_OPS
    for replica in cluster.replicas.values():
        assert replica.checkpoint.ids.interval_count <= 4 * len(CLIENTS)

    if TIMING_ASSERTS:
        # The in-process ratio is machine-independent; the bar is generous
        # against scheduler noise, the regression gate holds the real band.
        assert speedup > 1.3, f"fast core speedup collapsed: {speedup:.2f}x"

    emit_bench_json("E10_LONG", {
        "operations": LONG_RUN_OPS,
        "wall_ops_per_sec": outcome["wall_ops_per_sec"],
        "wall_ops_per_sec_fast": fast["wall_ops_per_sec"],
        "fast_core_speedup": speedup,
        "peak_tracked_ops": outcome["peak_tracked"],
        "per_replica_peaks": per_replica_peak,
        "compacted_operations": outcome["compacted"],
        "messages": outcome["messages"],
        "gossip_payload": outcome["gossip_payload"],
    })

    # Wall-clock measurement of a small representative slice.
    benchmark(run_history, 500, True, 9)
