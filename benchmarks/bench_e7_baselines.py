"""E7 — ESDS against the consistency-spectrum baselines (Sections 1.1, 1.2).

The same workload is offered to:

* ESDS with a non-strict (causal) workload — the fast path the paper argues for;
* ESDS with an all-strict workload — the atomic end of its spectrum;
* a centralized atomic server;
* primary-copy replication with synchronous write-all propagation;
* Ladin-style lazy replication (causal updates, gossip convergence).

Expected shape: ESDS non-strict ≈ Ladin lazy replication ≪ primary copy, and
all-strict ESDS pays the gossip-stabilization cost (slower than primary copy
but the same order of magnitude); centralized atomic saturates at one
server's capacity while ESDS throughput scales with replicas (see E1).
"""

from repro.baselines.atomic import CentralizedAtomicService
from repro.baselines.lazy_ladin import LadinLazyReplicationService
from repro.baselines.primary_copy import PrimaryCopyService
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, print_table

PARAMS = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, service_time=0.05)
NUM_REPLICAS = 3
CLIENTS = [f"c{i}" for i in range(4)]
SPEC = WorkloadSpec(operations_per_client=25, mean_interarrival=1.0, strict_fraction=0.0)
STRICT_SPEC = WorkloadSpec(operations_per_client=25, mean_interarrival=1.0, strict_fraction=1.0)


def run_system(name: str, seed: int = 0):
    if name == "esds_nonstrict":
        system = SimulatedCluster(CounterType(), NUM_REPLICAS, CLIENTS, params=PARAMS, seed=seed)
        spec = SPEC
    elif name == "esds_strict":
        system = SimulatedCluster(CounterType(), NUM_REPLICAS, CLIENTS, params=PARAMS, seed=seed)
        spec = STRICT_SPEC
    elif name == "atomic":
        system = CentralizedAtomicService(CounterType(), CLIENTS, params=PARAMS, seed=seed)
        spec = SPEC
    elif name == "primary_copy":
        system = PrimaryCopyService(CounterType(), NUM_REPLICAS, CLIENTS, params=PARAMS, seed=seed)
        spec = SPEC
    elif name == "ladin_lazy":
        system = LadinLazyReplicationService(CounterType(), NUM_REPLICAS, CLIENTS,
                                             params=PARAMS, seed=seed)
        spec = SPEC
    else:  # pragma: no cover - defensive
        raise ValueError(name)
    result = run_workload(system, spec, seed=seed + 17)
    return result


def test_e7_esds_fast_path_beats_strongly_consistent_baselines(benchmark):
    systems = ["esds_nonstrict", "esds_strict", "atomic", "primary_copy", "ladin_lazy"]
    results = {name: run_system(name) for name in systems}

    rows = [
        (
            name,
            f"{results[name].mean_latency:.2f}",
            f"{results[name].latency_summary().p95:.2f}",
            f"{results[name].throughput:.2f}",
        )
        for name in systems
    ]
    print_table(
        "E7: mean latency / p95 / throughput across systems (same offered load)",
        ["system", "mean latency", "p95 latency", "throughput"],
        rows,
    )

    esds_fast = results["esds_nonstrict"].mean_latency
    # The ESDS fast path matches the centralized round trip and beats
    # primary-copy's synchronous propagation.
    assert esds_fast < results["primary_copy"].mean_latency
    assert esds_fast <= results["atomic"].mean_latency * 1.5
    # Lazy replication's causal path is in the same league as ESDS non-strict.
    assert results["ladin_lazy"].mean_latency <= 2.0 * esds_fast
    # Full consistency costs: all-strict ESDS is the slowest configuration.
    assert results["esds_strict"].mean_latency > results["primary_copy"].mean_latency

    emit_bench_json("E7", {
        "mean_latency": {name: results[name].mean_latency for name in systems},
        "p95_latency": {name: results[name].latency_summary().p95 for name in systems},
        "throughput": {name: results[name].throughput for name in systems},
    })

    benchmark(run_system, "esds_nonstrict", 1)
