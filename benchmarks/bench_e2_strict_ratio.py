"""E2 — latency versus the fraction of strict operations (Section 11.1).

Cheiner's experiment: the average percentage of strict requests is swept from
0% to 100%; observed latency increases linearly with the proportion of strict
requests.  This is the designed consistency/performance trade-off.
"""

from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, monotonically_nondecreasing, print_table

PARAMS = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)


def run_strict_fraction(fraction: float, seed: int = 0) -> float:
    """Mean response latency for a workload with the given strict fraction."""
    cluster = SimulatedCluster(
        CounterType(), num_replicas=5,
        client_ids=[f"c{i}" for i in range(5)], params=PARAMS, seed=seed,
    )
    spec = WorkloadSpec(operations_per_client=25, mean_interarrival=1.0,
                        strict_fraction=fraction, poisson_arrivals=False)
    result = run_workload(cluster, spec, seed=seed + 7)
    return result.mean_latency


def test_e2_latency_grows_linearly_with_strict_fraction(benchmark):
    fractions = [0.0, 0.25, 0.5, 0.75, 1.0]
    latencies = {f: run_strict_fraction(f) for f in fractions}

    baseline = latencies[0.0]
    rows = [
        (f"{int(f * 100)}%", f"{latencies[f]:.2f}", f"{latencies[f] / baseline:.2f}x")
        for f in fractions
    ]
    print_table(
        "E2: mean latency vs fraction of strict requests (5 replicas)",
        ["strict requests", "mean latency", "vs 0% strict"],
        rows,
    )

    series = [latencies[f] for f in fractions]
    # Latency increases with the strict fraction...
    assert monotonically_nondecreasing(series, slack=0.02)
    assert latencies[1.0] > 1.5 * latencies[0.0]
    # ...and roughly linearly: the midpoint sits near the average of the
    # endpoints (within 35% relative error).
    midpoint = latencies[0.5]
    linear_prediction = (latencies[0.0] + latencies[1.0]) / 2
    assert abs(midpoint - linear_prediction) / linear_prediction < 0.35

    emit_bench_json("E2", {
        "mean_latency_by_strict_fraction": latencies,
        "slowdown_all_strict": latencies[1.0] / latencies[0.0],
    })

    benchmark(run_strict_fraction, 0.5, 1)
