"""E12 — live elastic resharding under traffic (throughput dip + recovery).

The service layer can change its consistent-hash ring **while serving
requests** (`ShardedCluster.reshard`): moving key ranges are frozen,
snapshot via the digest-verified chunked transfer path, replayed at the
destination, and dual-routed during the handoff window.  This experiment
quantifies what that costs the client:

* **E12a** — a sustained zipfian closed-ish load over a 4-shard ring; one
  third of the way in, the ring grows live to 8 shards.  We measure the
  committed-ops throughput time series around the reshard (steady / handoff
  window / after), the response-latency shift inside the window, the
  sim-time length of the whole handoff, and how many operations physically
  migrated.  The acceptance shape: no operation is lost or reordered
  (per-shard Section 7/8 invariants plus the reshard handoff audit), the
  window-average throughput stays above half the steady rate (dual-routing
  keeps the slow path narrow), and throughput recovers to the steady band
  once the last leg completes.
* **E12b** — the response-equivalence oracle: the identical deterministic
  operation script (same clients, same zipfian key sequence, same per-key
  ``prev`` chains) replayed on a *statically* 8-sharded twin built from the
  final ring must return exactly the same value for every operation
  (Theorem 5.8 lifted across the reshard: the live ring change is
  observationally equivalent to having deployed the final ring from the
  start).

All measurements are in simulated time, so the emitted metrics are
deterministic for a given seed and machine-independent; the CI regression
gate (``baselines/BASELINE_E12.json``) bands them tightly.

Environment knobs: ``E12_OPS`` (total operations, default 480),
``E12_KEYS`` (keyspace size, default 48), ``E12_ZIPF`` (zipf exponent,
default 1.2).
"""

import os
import random
from bisect import bisect_left

from repro.datatypes import CounterType
from repro.sim.cluster import SimulationParams
from repro.sim.sharded import ShardedCluster

from conftest import emit_bench_json, print_table

OPS = int(os.environ.get("E12_OPS", "480"))
NUM_KEYS = int(os.environ.get("E12_KEYS", "48"))
ZIPF_S = float(os.environ.get("E12_ZIPF", "1.2"))

CLIENTS = tuple(f"c{i}" for i in range(4))
KEYS = tuple(f"k{i:03d}" for i in range(NUM_KEYS))
INTERARRIVAL = 0.25          # sim-time between consecutive submissions
RESHARD_AT_OP = OPS // 3     # the ring change lands mid-load
BUCKET = 8.0                 # throughput time-series resolution
READ_FRACTION = 0.3


def make_params() -> SimulationParams:
    return SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0, batch_gossip=True,
        incremental_replay=True,
    )


def zipf_cdf(n: int, s: float):
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    acc, cdf = 0.0, []
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


def script(seed: int = 11):
    """The deterministic operation script both twins replay: a zipfian key
    pick and an increment-or-read flip per step.  Values are pinned by
    per-key ``prev`` chains, so they cannot depend on cross-shard timing."""
    rng = random.Random(seed)
    cdf = zipf_cdf(NUM_KEYS, ZIPF_S)
    steps = []
    for i in range(OPS):
        key = KEYS[bisect_left(cdf, rng.random())]
        steps.append((CLIENTS[i % len(CLIENTS)], key, rng.random() < READ_FRACTION))
    return steps


def drive(cluster: ShardedCluster, reshard_to=None):
    """Replay the script against *cluster*, optionally growing the ring to
    *reshard_to* shards at ``RESHARD_AT_OP``; returns per-op bookkeeping."""
    submit_time, ops, handle = {}, [], None
    for i, (client, key, is_read) in enumerate(script()):
        if reshard_to is not None and i == RESHARD_AT_OP:
            target = cluster.router
            for n in range(len(target.shard_ids), reshard_to):
                target = target.add_shard(f"s{n}")
            handle = cluster.reshard(target)
        prev = cluster.last_operation_on(key)
        operator = CounterType.read() if is_read else CounterType.increment()
        op = cluster.submit(client, key, operator,
                            prev=(prev,) if prev else ())
        submit_time[op.id] = cluster.now
        ops.append(op)
        cluster.run(INTERARRIVAL)
    load_end = cluster.now
    cluster.run_until_idle()
    assert cluster.outstanding_operations() == 0
    if handle is not None:
        assert handle.done, "reshard never completed"
    return ops, submit_time, load_end, handle


def completion_times(cluster: ShardedCluster):
    """Per-operation response time as the client saw it: the minting
    shard's record wins (the destination's re-answer of an injected chain
    is bookkeeping, not a client response)."""
    times = {}
    for sid, shard in cluster.shards.items():
        for record in shard.metrics.records:
            op_id = record.operation.id
            if cluster.directory.origin_shard(op_id, sid) == sid:
                times[op_id] = record.response_time
            else:
                times.setdefault(op_id, record.response_time)
    return times


def throughput_in(times, start: float, end: float) -> float:
    if end <= start:
        return 0.0
    done = sum(1 for t in times.values() if start <= t < end)
    return done / (end - start)


def test_e12a_live_4_to_8_reshard_under_zipfian_load():
    cluster = ShardedCluster(
        CounterType(), num_shards=4, replicas_per_shard=3,
        client_ids=CLIENTS, params=make_params(), seed=3,
    )
    ops, submit_time, load_end, handle = drive(cluster, reshard_to=8)
    cluster.check_invariants()     # Section 7/8 per shard + handoff audit
    cluster.check_traces()         # Theorem 5.8 per shard

    times = completion_times(cluster)
    t0, t1 = handle.started_at, handle.completed_at
    window = (t0, min(t1, load_end))
    steady = throughput_in(times, max(0.0, t0 - 4 * BUCKET), t0)
    during = throughput_in(times, *window)
    after = throughput_in(times, t1, load_end) if t1 < load_end else during

    buckets = []
    edge = 0.0
    while edge < load_end:
        buckets.append((edge, throughput_in(times, edge, edge + BUCKET)))
        edge += BUCKET
    dip = min((rate for edge, rate in buckets
               if t0 - BUCKET <= edge < window[1]), default=during)

    latency = {
        phase: sorted(
            times[op.id] - submit_time[op.id]
            for op in ops if op.id in times and pred(submit_time[op.id])
        )
        for phase, pred in (
            ("before", lambda t: t < t0),
            ("during", lambda t: t0 <= t < window[1]),
            ("after", lambda t: t >= window[1]),
        )
    }

    def p99(series):
        return series[int(0.99 * (len(series) - 1))] if series else 0.0

    print_table(
        f"E12a: live 4->8 reshard at t={t0:.0f} under zipfian load "
        f"({OPS} ops, {NUM_KEYS} keys, s={ZIPF_S})",
        ["phase", "ops/time", "p99 latency"],
        [
            ("steady (pre)", f"{steady:.2f}", f"{p99(latency['before']):.1f}"),
            ("handoff window", f"{during:.2f}", f"{p99(latency['during']):.1f}"),
            ("after", f"{after:.2f}", f"{p99(latency['after']):.1f}"),
        ],
    )
    summary = handle.summary()
    print(f"handoff: {t1 - t0:.1f} time units, {summary['legs']} legs, "
          f"{summary['moved_ranges']} ranges, "
          f"{summary['moved_operations']} operations migrated, "
          f"worst bucket {dip:.2f} ops/time")

    # Acceptance shape: every op answered (asserted in drive); the handoff
    # window keeps at least half the steady throughput (dual-routing), and
    # the post-window rate recovers into the steady band.
    assert len(times) == len(ops)
    assert during >= 0.5 * steady, f"window throughput {during:.2f} vs steady {steady:.2f}"
    assert after >= 0.75 * steady, f"post-reshard throughput never recovered: {after:.2f}"
    assert summary["moved_operations"] > 0
    assert handle.transfer_rejections == 0  # no faults injected here

    _E12_METRICS.update({
        "ops": OPS, "keys": NUM_KEYS, "zipf_exponent": ZIPF_S,
        "reshard_duration": t1 - t0,
        "moved_operations": summary["moved_operations"],
        "moved_ranges": summary["moved_ranges"],
        "legs": summary["legs"],
        "throughput": {"steady": steady, "window": during, "after": after,
                       "worst_bucket": dip},
        "window_over_steady": during / max(steady, 1e-9),
        "after_over_steady": after / max(steady, 1e-9),
        "p99_latency": {phase: p99(series) for phase, series in latency.items()},
    })
    emit_bench_json("E12", _E12_METRICS)


#: Cross-test metric accumulator: pytest runs the parts in file order and
#: the LAST emit wins, so E12b re-emits the merged dict with its oracle bit.
_E12_METRICS = {"oracle_match": 0}


def test_e12b_live_reshard_matches_statically_sharded_oracle(benchmark):
    live = ShardedCluster(
        CounterType(), num_shards=4, replicas_per_shard=3,
        client_ids=CLIENTS, params=make_params(), seed=3,
    )
    live_ops, _, _, handle = drive(live, reshard_to=8)

    oracle = ShardedCluster(
        CounterType(), replicas_per_shard=3, client_ids=CLIENTS,
        params=make_params(), seed=3, router=handle.new_router,
    )
    assert oracle.shard_ids == handle.new_router.shard_ids
    oracle_ops, _, _, _ = drive(oracle)

    live_values = [live.value_of(op) for op in live_ops]
    oracle_values = [oracle.value_of(op) for op in oracle_ops]
    assert live_values == oracle_values, (
        "live reshard diverged from the statically 8-sharded twin"
    )
    print(f"E12b: {len(live_values)} responses identical to the "
          f"statically-8-sharded oracle twin")

    _E12_METRICS["oracle_match"] = 1
    emit_bench_json("E12", _E12_METRICS)

    # Wall-clock measurement of one representative (smaller) live reshard.
    def small_reshard():
        cluster = ShardedCluster(
            CounterType(), num_shards=2, replicas_per_shard=2,
            client_ids=CLIENTS[:2], params=make_params(), seed=5,
        )
        rng = random.Random(17)
        handle = None
        for i in range(80):
            key = KEYS[rng.randrange(8)]
            prev = cluster.last_operation_on(key)
            cluster.submit(CLIENTS[i % 2], key, CounterType.increment(),
                           prev=(prev,) if prev else ())
            if i == 30:
                handle = cluster.reshard(cluster.router.add_shard("s2"))
            cluster.run(INTERARRIVAL)
        cluster.run_until_idle()
        assert handle.done
        return cluster

    benchmark.pedantic(small_reshard, rounds=1, iterations=1)
