"""E6 — ablation of the Section 10 optimizations.

The abstract replica recomputes the whole label-ordered history for every
response; the memoizing replica (Section 10.1, ESDS-Alg') replays only the
non-solid suffix; the Commute replica (Section 10.3) computes each value once
as the operation is done.  The benchmark counts data-type operator
applications per delivered response for the three variants on the same
workload and checks that the external results agree.
"""

from repro.algorithm.commute import CommuteReplicaCore
from repro.algorithm.memoized import MemoizedReplicaCore
from repro.algorithm.replica import IncrementalReplicaCore, ReplicaCore
from repro.datatypes import GSetType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, print_table

PARAMS = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)


def gset_mix(rng, index):
    """Commuting inserts with occasional membership queries, so the workload
    is valid for the Commute variant's SafeUsers discipline as well."""
    if rng.random() < 0.7:
        return GSetType.insert(rng.randint(0, 50))
    return GSetType.size()


def run_variant(factory, seed: int = 0):
    cluster = SimulatedCluster(GSetType(), num_replicas=3,
                               client_ids=["c0", "c1"], params=PARAMS, seed=seed,
                               replica_factory=factory)
    spec = WorkloadSpec(operations_per_client=40, mean_interarrival=0.5,
                        strict_fraction=0.1, operator_factory=gset_mix)
    result = run_workload(cluster, spec, seed=seed + 9)
    responses = result.metrics.completed
    return {
        "cluster": cluster,
        "result": result,
        "value_applications": cluster.total_value_applications(),
        "total_applications": cluster.total_applications(),
        "per_response": cluster.total_value_applications() / max(responses, 1),
        "values": {r.operation.id: r.value for r in result.metrics.records},
    }


def test_e6_memoization_and_commutativity_cut_recomputation(benchmark):
    variants = [
        ("abstract (ESDS-Alg)", ReplicaCore),
        ("incremental replay", IncrementalReplicaCore),
        ("memoized (ESDS-Alg')", MemoizedReplicaCore),
        ("commute (Fig. 11)", CommuteReplicaCore),
    ]
    outcomes = {name: run_variant(factory) for name, factory in variants}

    rows = [
        (
            name,
            outcomes[name]["result"].metrics.completed,
            outcomes[name]["value_applications"],
            f"{outcomes[name]['per_response']:.1f}",
            outcomes[name]["total_applications"],
        )
        for name, _factory in variants
    ]
    print_table(
        "E6: operator applications spent computing response values",
        ["replica variant", "responses", "replay applications", "replays per response", "all applications"],
        rows,
    )

    plain = outcomes["abstract (ESDS-Alg)"]
    incremental = outcomes["incremental replay"]
    memo = outcomes["memoized (ESDS-Alg')"]
    commute = outcomes["commute (Fig. 11)"]

    # The memoizing replica replays far less than the abstract one, and the
    # Commute replica performs no response-time replay at all.
    assert memo["value_applications"] < 0.5 * plain["value_applications"]
    assert commute["value_applications"] == 0
    # The incremental replay cache replays only changed suffixes and returns
    # the exact same values as the from-scratch path.
    assert incremental["value_applications"] < 0.5 * plain["value_applications"]
    assert incremental["values"] == plain["values"]
    # Even counting the bookkeeping applications (memoize / current-state
    # updates), both optimizations do less total work than the abstract replica.
    assert memo["total_applications"] < plain["total_applications"]
    assert commute["total_applications"] < plain["total_applications"]
    # External behaviour is unchanged for the memoizing variant (same values
    # for the identical deterministic workload).
    assert memo["values"] == plain["values"]

    emit_bench_json("E6", {
        "value_applications": {
            name: outcomes[name]["value_applications"] for name, _f in variants
        },
        "applications_per_response": {
            name: outcomes[name]["per_response"] for name, _f in variants
        },
        "total_applications": {
            name: outcomes[name]["total_applications"] for name, _f in variants
        },
    })

    benchmark(run_variant, MemoizedReplicaCore, 1)
