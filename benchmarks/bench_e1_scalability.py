"""E1 — throughput scaling with the number of replicas (Section 11.1).

Cheiner's experiment: 1-10 replicas, only non-strict operations, fixed
request frequency per replica; observed throughput grows almost linearly with
the number of replicas.  Our algorithm requires at least two replicas, so the
sweep runs 2-10 and additionally reports the single-server centralized
baseline as the "1 replica" point.

A second table compares *wall-clock* time for the same seeded execution on
the base :class:`~repro.algorithm.replica.ReplicaCore` and the raw-speed
:class:`~repro.algorithm.fastcore.FastReplicaCore`: simulated metrics are
identical by contract (same responses, same witness order), only the host
CPU cost of replay/ordering moves.
"""

import os
import time

from repro.baselines.atomic import CentralizedAtomicService
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, monotonically_nondecreasing, print_table

SERVICE_TIME = 0.4
CLIENTS_PER_REPLICA = 2
OPS_PER_CLIENT = 30
INTERARRIVAL = 0.8  # per client; offered load scales with the replica count

#: The wall-clock twin workload: heavy enough that replay/ordering dominates
#: the measurement, small enough for PR CI.
WALL_CLOCK_OPS = 2000
TIMING_ASSERTS = os.environ.get("E10_TIMING_ASSERTS", "1") == "1"


def run_replica_count(num_replicas: int, seed: int = 0) -> float:
    """Throughput (completed operations per unit time) for one configuration."""
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0,
        service_time=SERVICE_TIME, frontend_policy="affinity",
    )
    clients = [f"c{i}" for i in range(CLIENTS_PER_REPLICA * num_replicas)]
    cluster = SimulatedCluster(CounterType(), num_replicas, clients, params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=OPS_PER_CLIENT,
                        mean_interarrival=INTERARRIVAL, strict_fraction=0.0)
    result = run_workload(cluster, spec, seed=seed + 1)
    return result.throughput


def run_centralized(seed: int = 0) -> float:
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, service_time=SERVICE_TIME)
    clients = [f"c{i}" for i in range(CLIENTS_PER_REPLICA)]
    service = CentralizedAtomicService(CounterType(), clients, params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=OPS_PER_CLIENT,
                        mean_interarrival=INTERARRIVAL, strict_fraction=0.0)
    return run_workload(service, spec, seed=seed + 1).throughput


def run_wall_clock(fast: bool, seed: int = 3):
    """The seeded wall-clock twin: an E1-style non-strict workload on the
    PR 1 hot path (delta gossip, incremental replay, batched gossip), with
    the replica variant as the only difference."""
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0,
        delta_gossip=True, incremental_replay=True, batch_gossip=True,
        frontend_policy="affinity", fast_core=fast,
    )
    clients = [f"c{i}" for i in range(4)]
    cluster = SimulatedCluster(CounterType(), 3, clients, params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=WALL_CLOCK_OPS // len(clients),
                        mean_interarrival=0.25, strict_fraction=0.0)
    started = time.perf_counter()
    result = run_workload(cluster, spec, seed=seed + 1)
    wall = time.perf_counter() - started
    return cluster, result, wall


def test_e1_throughput_scales_with_replicas(benchmark):
    counts = [2, 4, 6, 8, 10]
    throughputs = {n: run_replica_count(n) for n in counts}
    centralized = run_centralized()

    rows = [("1 (centralized)", f"{centralized:.2f}", "-")]
    for n in counts:
        speedup = throughputs[n] / throughputs[counts[0]]
        rows.append((str(n), f"{throughputs[n]:.2f}", f"{speedup:.2f}x"))
    print_table(
        "E1: throughput vs number of replicas (non-strict workload)",
        ["replicas", "throughput (ops/time)", "vs 2 replicas"],
        rows,
    )

    # Paper's shape: throughput increases ~linearly as replicas are added.
    series = [throughputs[n] for n in counts]
    assert monotonically_nondecreasing(series, slack=0.05)
    assert throughputs[10] >= 3.0 * throughputs[2]

    # Wall-clock twins: the same seeded execution, base core vs fast core.
    base_cluster, base_result, base_wall = run_wall_clock(fast=False)
    fast_cluster, fast_result, fast_wall = run_wall_clock(fast=True)
    assert base_cluster.responded == fast_cluster.responded
    assert base_cluster.eventual_order() == fast_cluster.eventual_order()
    assert base_result.metrics.completed == fast_result.metrics.completed == WALL_CLOCK_OPS
    wall_speedup = base_wall / fast_wall
    print_table(
        f"E1 wall clock: {WALL_CLOCK_OPS} ops, base vs fast replica core",
        ["core", "wall", "ops/s"],
        [
            ("base", f"{base_wall:.2f}s", f"{WALL_CLOCK_OPS / base_wall:.0f}"),
            ("fast", f"{fast_wall:.2f}s", f"{WALL_CLOCK_OPS / fast_wall:.0f}"),
            ("speedup", f"{wall_speedup:.2f}x", "-"),
        ],
    )
    if TIMING_ASSERTS:
        # In-process ratio, so machine speed cancels; generous bar for
        # scheduler noise — the regression gate holds the real band.
        assert wall_speedup > 1.3, f"fast core speedup collapsed: {wall_speedup:.2f}x"

    emit_bench_json("E1", {
        "throughput_by_replicas": {n: throughputs[n] for n in counts},
        "centralized_throughput": centralized,
        "speedup_2_to_10": throughputs[10] / throughputs[2],
        "wall_clock_ops": WALL_CLOCK_OPS,
        "wall_seconds_base": base_wall,
        "wall_seconds_fast": fast_wall,
        "wall_ops_per_sec_base": WALL_CLOCK_OPS / base_wall,
        "wall_ops_per_sec_fast": WALL_CLOCK_OPS / fast_wall,
        "fast_core_speedup": wall_speedup,
    })

    # Wall-clock measurement of one representative configuration.
    benchmark(run_replica_count, 4, 1)
