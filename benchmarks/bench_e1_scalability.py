"""E1 — throughput scaling with the number of replicas (Section 11.1).

Cheiner's experiment: 1-10 replicas, only non-strict operations, fixed
request frequency per replica; observed throughput grows almost linearly with
the number of replicas.  Our algorithm requires at least two replicas, so the
sweep runs 2-10 and additionally reports the single-server centralized
baseline as the "1 replica" point.
"""

from repro.baselines.atomic import CentralizedAtomicService
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, monotonically_nondecreasing, print_table

SERVICE_TIME = 0.4
CLIENTS_PER_REPLICA = 2
OPS_PER_CLIENT = 30
INTERARRIVAL = 0.8  # per client; offered load scales with the replica count


def run_replica_count(num_replicas: int, seed: int = 0) -> float:
    """Throughput (completed operations per unit time) for one configuration."""
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0,
        service_time=SERVICE_TIME, frontend_policy="affinity",
    )
    clients = [f"c{i}" for i in range(CLIENTS_PER_REPLICA * num_replicas)]
    cluster = SimulatedCluster(CounterType(), num_replicas, clients, params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=OPS_PER_CLIENT,
                        mean_interarrival=INTERARRIVAL, strict_fraction=0.0)
    result = run_workload(cluster, spec, seed=seed + 1)
    return result.throughput


def run_centralized(seed: int = 0) -> float:
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, service_time=SERVICE_TIME)
    clients = [f"c{i}" for i in range(CLIENTS_PER_REPLICA)]
    service = CentralizedAtomicService(CounterType(), clients, params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=OPS_PER_CLIENT,
                        mean_interarrival=INTERARRIVAL, strict_fraction=0.0)
    return run_workload(service, spec, seed=seed + 1).throughput


def test_e1_throughput_scales_with_replicas(benchmark):
    counts = [2, 4, 6, 8, 10]
    throughputs = {n: run_replica_count(n) for n in counts}
    centralized = run_centralized()

    rows = [("1 (centralized)", f"{centralized:.2f}", "-")]
    for n in counts:
        speedup = throughputs[n] / throughputs[counts[0]]
        rows.append((str(n), f"{throughputs[n]:.2f}", f"{speedup:.2f}x"))
    print_table(
        "E1: throughput vs number of replicas (non-strict workload)",
        ["replicas", "throughput (ops/time)", "vs 2 replicas"],
        rows,
    )

    # Paper's shape: throughput increases ~linearly as replicas are added.
    series = [throughputs[n] for n in counts]
    assert monotonically_nondecreasing(series, slack=0.05)
    assert throughputs[10] >= 3.0 * throughputs[2]

    emit_bench_json("E1", {
        "throughput_by_replicas": {n: throughputs[n] for n in counts},
        "centralized_throughput": centralized,
        "speedup_2_to_10": throughputs[10] / throughputs[2],
    })

    # Wall-clock measurement of one representative configuration.
    benchmark(run_replica_count, 4, 1)
