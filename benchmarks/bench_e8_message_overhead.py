"""E8 — gossip message overhead versus the number of replicas (Section 10.4).

Each replica gossips to every other replica every ``g`` time units, so the
gossip message count per unit time grows quadratically with the number of
replicas (n*(n-1) per round), while request/response traffic grows only with
the offered load.  The paper points out that a broadcast primitive would make
this linear; the table quantifies the quadratic growth that motivates that
optimization, together with the payload growth that motivates incremental
gossip.
"""

from repro.algorithm.messages import incremental_gossip
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, print_table

DURATION_OPS = 20


def run_replicas(num_replicas: int, seed: int = 0, delta_gossip: bool = False):
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0,
                              delta_gossip=delta_gossip, full_state_interval=8)
    cluster = SimulatedCluster(CounterType(), num_replicas, ["c0", "c1"],
                               params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=DURATION_OPS, mean_interarrival=1.0,
                        strict_fraction=0.2)
    result = run_workload(cluster, spec, seed=seed + 2)
    counters = cluster.network.counters
    completed = max(result.metrics.completed, 1)
    return {
        "gossip": counters.gossip,
        "request": counters.request,
        "response": counters.response,
        "gossip_per_op": counters.gossip / completed,
        "payload": counters.gossip_payload,
        "payload_per_gossip": counters.gossip_payload / max(counters.gossip, 1),
        "duration": result.duration,
        "responded": dict(cluster.responded),
    }


def test_e8_gossip_traffic_grows_quadratically_with_replicas(benchmark):
    counts = [2, 4, 6, 8]
    outcomes = {n: run_replicas(n) for n in counts}

    rows = [
        (
            n,
            outcomes[n]["gossip"],
            f"{outcomes[n]['gossip_per_op']:.1f}",
            outcomes[n]["request"] + outcomes[n]["response"],
            f"{outcomes[n]['payload_per_gossip']:.1f}",
        )
        for n in counts
    ]
    print_table(
        "E8: message counts vs number of replicas (same offered load)",
        ["replicas", "gossip msgs", "gossip per op", "request+response msgs", "payload per gossip"],
        rows,
    )

    # Quadratic growth of gossip count: going 2 -> 8 replicas multiplies the
    # pair count by 28/2 = 14; allow generous slack for run-length effects.
    ratio = outcomes[8]["gossip"] / outcomes[2]["gossip"]
    assert ratio > 8.0
    # Client traffic is load-bound, not replica-bound.
    client_ratio = (outcomes[8]["request"] + outcomes[8]["response"]) / (
        outcomes[2]["request"] + outcomes[2]["response"]
    )
    assert client_ratio < 2.0

    benchmark(run_replicas, 4, 1)


def test_e8_delta_gossip_reduces_payload_at_scale():
    """Ack-based delta gossip (the production form of Section 10.4's
    incremental gossip) ships a fraction of the full-state payload while
    inducing the identical execution — compare ops transmitted per round at
    2–8 replicas under the same seeded workload."""
    counts = [2, 4, 8]
    rows = []
    outcomes = {}
    for n in counts:
        full = run_replicas(n, delta_gossip=False)
        delta = run_replicas(n, delta_gossip=True)
        outcomes[n] = (full, delta)
        rows.append((
            n,
            full["payload"],
            delta["payload"],
            f"{full['payload_per_gossip']:.1f}",
            f"{delta['payload_per_gossip']:.1f}",
            f"{delta['payload'] / max(full['payload'], 1):.2f}",
        ))
    print_table(
        "E8c: gossip payload, full-state vs delta gossip (same seeded load)",
        ["replicas", "full payload", "delta payload",
         "full per gossip", "delta per gossip", "delta/full"],
        rows,
    )

    for n in counts:
        full, delta = outcomes[n]
        # Delta gossip changes the wire payload, not the execution.
        assert full["responded"] == delta["responded"]
    # The acceptance bar: clearly fewer operation references per round at
    # eight replicas.
    full8, delta8 = outcomes[8]
    assert delta8["payload"] < full8["payload"]
    assert delta8["payload_per_gossip"] < 0.75 * full8["payload_per_gossip"]

    emit_bench_json("E8", {
        "gossip_messages_by_replicas": {
            n: outcomes[n][0]["gossip"] for n in counts
        },
        "full_payload_by_replicas": {n: outcomes[n][0]["payload"] for n in counts},
        "delta_payload_by_replicas": {n: outcomes[n][1]["payload"] for n in counts},
        "delta_over_full_at_8": delta8["payload"] / max(full8["payload"], 1),
    })


def test_e8_incremental_gossip_shrinks_payload():
    """The Section 10.4 incremental-gossip optimization sends only deltas."""
    base = run_replicas(4)
    # Construct two successive gossip payloads and compare the full second
    # message with its incremental form.
    cluster = SimulatedCluster(CounterType(), 3, ["c0"],
                               params=SimulationParams(df=1, dg=1, gossip_period=2), seed=3)
    for _ in range(10):
        cluster.execute("c0", CounterType.increment())
    first = cluster.replicas["r0"].make_gossip()
    for _ in range(2):
        cluster.execute("c0", CounterType.increment())
    second = cluster.replicas["r0"].make_gossip()
    delta = incremental_gossip(first, second)
    assert delta.size_estimate() < second.size_estimate()
    assert delta.done <= second.done
    print(f"\nE8b: full gossip payload {second.size_estimate()} vs incremental "
          f"{delta.size_estimate()} (baseline per-gossip payload at 4 replicas: "
          f"{base['payload_per_gossip']:.1f})")
