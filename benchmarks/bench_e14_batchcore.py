"""E14 — the batch replay kernel: raw-speed headroom, measured.

E7/E13 established the fast core's win over the base core; E14 measures
what the struct-of-arrays batch kernel (:class:`BatchReplicaCore`,
``batch_replay=True``) adds on top of it — and re-checks, inside the
benchmark itself, that the speed never comes from a different execution.

Three parts:

* **E14a** — seeded sim twins, fast vs batch, on the full-feature
  configuration (delta + incremental + compaction + advert/pull): the
  responses, witness order and replica states must be identical; the
  stats record how much replay work each core performed.
* **E14b** — the 50k long-run replay arm: a recorded gossip stream
  (4 writers, delta gossip, coalesced 4-message batches — the same shape
  the net runtime's frame handler feeds ``receive_gossip_batch``) is
  ingested by a cold reader on each core and the wall clock compared.
  The kernel's deferred order splices must make catch-up ingestion at
  least **1.5x** faster than the fast core's per-message splicing.
* **E14c** — sustained closed-loop throughput over real TCP loopback
  sockets (the E13c shape) on the fast vs the batch core, plus the
  headline gate: the post-PR net hot path (zero-copy decode, pooled
  encoder, TCP_NODELAY) must sustain at least **2x** the prior release's
  E13c throughput.  The prior number was latency-bound (Nagle + delayed
  ACK), not CPU-bound, so the bar is meaningful on uncalibrated machines
  too; the in-run fast-vs-batch ratio is machine-relative by
  construction.

Wall-clock asserts are skipped when ``E14_TIMING_ASSERTS=0``; the
execution-identity asserts hold everywhere.  Environment knobs:
``E14_SIM_OPS`` (E14a ops, default 400), ``E14_LONG_OPS`` (E14b stream
length, default 50000), ``E14_NET_OPS`` (E14c ops per client, default
200), ``E14_TIMING_ASSERTS`` (default on).
"""

import asyncio
import gc
import os
import time

from repro.algorithm.batchcore import BatchReplicaCore
from repro.algorithm.checkpoint import CompactionPolicy
from repro.algorithm.fastcore import FastReplicaCore
from repro.algorithm.messages import RequestMessage
from repro.common import OperationIdGenerator
from repro.core.operations import make_operation
from repro.datatypes import CounterType
from repro.net.driver import LoadSpec, run_load
from repro.net.runtime import NetCluster, NetParams
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, print_table

SIM_OPS = int(os.environ.get("E14_SIM_OPS", "400"))
LONG_OPS = int(os.environ.get("E14_LONG_OPS", "50000"))
NET_OPS = int(os.environ.get("E14_NET_OPS", "200"))
TIMING_ASSERTS = os.environ.get("E14_TIMING_ASSERTS", "1") != "0"
CLIENTS = [f"c{i}" for i in range(4)]

#: E13c fast-core TCP throughput at the previous release (ops/s), before
#: the zero-copy decode path, the pooled encoder and TCP_NODELAY.  The
#: number was latency-bound — Nagle plus the peer's delayed ACK stalled
#: every sub-MSS frame ~40ms — so it is stable across machine speeds.
PRIOR_E13_TCP_OPS = 487.0

#: The acceptance bars (see docs/benchmarks.md, E14).
MIN_LONG_REPLAY_SPEEDUP = 1.5
MIN_NET_OVER_PRIOR_E13 = 2.0


# --------------------------------------------------------------------------- #
# E14a: seeded sim twins, fast vs batch                                       #
# --------------------------------------------------------------------------- #

def run_sim(batch: bool, total_ops: int = SIM_OPS, seed: int = 3):
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0, batch_gossip=True,
        delta_gossip=True, full_state_interval=8, incremental_replay=True,
        compaction=CompactionPolicy(min_batch=8, value_retention=64),
        compaction_interval=10.0, advert_gossip=True,
        fast_core=True, batch_replay=batch,
    )
    cluster = SimulatedCluster(CounterType(), 3, CLIENTS, params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=total_ops // len(CLIENTS),
                        mean_interarrival=0.5, strict_fraction=0.05)
    begin = time.perf_counter()
    run_workload(cluster, spec, seed=seed + 1)
    cluster.run_until_idle()
    elapsed = time.perf_counter() - begin
    stats = {
        "value_applications": sum(
            r.stats.value_applications for r in cluster.replicas.values()
        ),
        "done_order_sorts": sum(
            r.stats.done_order_sorts for r in cluster.replicas.values()
        ),
    }
    return cluster, elapsed, stats


_E14A_METRICS = {}
_E14B_METRICS = {}
_E14C_METRICS = {}


def merged_metrics():
    return {**_E14A_METRICS, **_E14B_METRICS, **_E14C_METRICS}


def test_e14a_batch_kernel_is_execution_identical_in_sim():
    fast, fast_s, fast_stats = run_sim(batch=False)
    batch, batch_s, batch_stats = run_sim(batch=True)

    assert all(isinstance(r, BatchReplicaCore) for r in batch.replicas.values())
    assert not any(isinstance(r, BatchReplicaCore) for r in fast.replicas.values())
    # The kernel is an optimization, not a semantic change.
    assert fast.responded == batch.responded
    assert fast.failed == batch.failed
    assert fast.eventual_order() == batch.eventual_order()
    assert (
        {rid: r.replayed_state() for rid, r in fast.replicas.items()}
        == {rid: r.replayed_state() for rid, r in batch.replicas.items()}
    )
    # Batching defers work; it must never *add* replay work.
    assert batch_stats["value_applications"] <= fast_stats["value_applications"]

    print_table(
        f"E14a: sim twins on the full-feature config ({SIM_OPS} ops)",
        ["core", "wall s", "value applications", "full re-sorts"],
        [
            ("fast", f"{fast_s:.3f}", f"{fast_stats['value_applications']:,}",
             fast_stats["done_order_sorts"]),
            ("batch", f"{batch_s:.3f}", f"{batch_stats['value_applications']:,}",
             batch_stats["done_order_sorts"]),
        ],
    )
    _E14A_METRICS.update({
        "sim_ops": SIM_OPS,
        "sim_identical": True,
        "sim_value_applications_fast": fast_stats["value_applications"],
        "sim_value_applications_batch": batch_stats["value_applications"],
        "sim_value_applications_ratio": (
            batch_stats["value_applications"]
            / max(fast_stats["value_applications"], 1)
        ),
    })
    emit_bench_json("E14", merged_metrics())


# --------------------------------------------------------------------------- #
# E14b: the 50k long-run replay arm                                           #
# --------------------------------------------------------------------------- #

WRITERS = 4
ROUND_OPS = 25  # ops per writer per recorded gossip message


def _make_core(cls, replica_id, replica_ids):
    core = cls(replica_id, replica_ids, CounterType())
    core.configure_delta_gossip(True, 1 << 30)
    core.enable_incremental_replay()
    return core


def record_stream(total_ops: int):
    """Drive the writers once and record, per round, the coalesced batch of
    delta-gossip messages the reader ingests — the exact shape the net
    runtime's frame handler hands to ``receive_gossip_batch``.  The reader
    runs during recording so the writers' delta bases advance off its acks;
    the recorded stream itself is reader-independent."""
    ids = ["reader"] + [f"w{i}" for i in range(WRITERS)]
    reader = _make_core(FastReplicaCore, "reader", ids)
    writers = [_make_core(FastReplicaCore, f"w{i}", ids) for i in range(WRITERS)]
    gens = [OperationIdGenerator(f"c{i}") for i in range(WRITERS)]
    stream = []
    for _round in range(total_ops // (WRITERS * ROUND_OPS)):
        batch = []
        for writer, gen in zip(writers, gens):
            for _ in range(ROUND_OPS):
                op = make_operation(CounterType.increment(), gen.fresh())
                writer.receive_request(RequestMessage(operation=op))
            writer.do_all_ready()
            batch.append(writer.make_gossip("reader"))
        stream.append(batch)
        reader.receive_gossip_batch(batch)
        reader.do_all_ready()
        for writer in writers:
            writer.receive_gossip(reader.make_gossip(writer.replica_id))
    return ids, stream


def replay_stream(cls, ids, stream):
    """Cold-reader catch-up: ingest the recorded stream batch by batch,
    then compute the final replayed value.  Returns (seconds, order ids,
    final value)."""
    reader = _make_core(cls, "reader", ids)
    begin = time.perf_counter()
    for batch in stream:
        reader.receive_gossip_batch(batch)
        reader.do_all_ready()
    order = reader.done_order()
    value = reader.compute_value(order[-1])
    elapsed = time.perf_counter() - begin
    return elapsed, [x.id for x in order], value


def test_e14b_long_run_replay_arm():
    ids, stream = record_stream(LONG_OPS)
    total = sum(len(batch) for batch in stream) * ROUND_OPS
    gc.collect()  # keep the prior arm's garbage out of this arm's clock
    fast_s, fast_order, fast_value = replay_stream(FastReplicaCore, ids, stream)
    gc.collect()
    batch_s, batch_order, batch_value = replay_stream(BatchReplicaCore, ids, stream)

    # Same stream, same execution: the kernel only changes the wall clock.
    assert batch_order == fast_order
    assert batch_value == fast_value
    assert len(fast_order) == total

    speedup = fast_s / max(batch_s, 1e-9)
    print_table(
        f"E14b: cold-reader catch-up over a recorded {total}-op gossip stream",
        ["core", "wall s", "ingest ops/s"],
        [
            ("fast", f"{fast_s:.3f}", f"{total / fast_s:,.0f}"),
            ("batch", f"{batch_s:.3f}", f"{total / batch_s:,.0f}"),
            ("speedup", f"{speedup:.2f}x", ""),
        ],
    )
    if TIMING_ASSERTS:
        assert speedup >= MIN_LONG_REPLAY_SPEEDUP, (
            f"batch kernel only {speedup:.2f}x faster on the {total}-op "
            f"catch-up arm (need >= {MIN_LONG_REPLAY_SPEEDUP}x)"
        )
    _E14B_METRICS.update({
        "long_ops": total,
        "long_replay_speedup": speedup,
        "long_replay_ops_per_sec_fast": total / fast_s,
        "long_replay_ops_per_sec_batch": total / batch_s,
    })
    emit_bench_json("E14", merged_metrics())


# --------------------------------------------------------------------------- #
# E14c: TCP loopback throughput, fast vs batch, vs the prior release         #
# --------------------------------------------------------------------------- #

async def _tcp_run(batch_replay: bool):
    params = NetParams(gossip_period=0.5, delta_gossip=True,
                       incremental_replay=True, fast_core=True,
                       batch_replay=batch_replay)
    cluster = NetCluster(CounterType(), num_replicas=4,
                         client_ids=tuple(f"c{i}" for i in range(16)),
                         params=params, transport="tcp")
    async with cluster:
        report = await run_load(cluster, LoadSpec(operations_per_client=NET_OPS, seed=0))
        converged = await cluster.quiesce(timeout=120.0)
    return report, converged


def test_e14c_tcp_loopback_beats_prior_release():
    results = {}
    for batch in (True, False):
        # Collect the previous arm's cyclic garbage now: a gen-2 pass
        # landing mid-run stalls the event loop for hundreds of ms and
        # poisons the slower arm's latency tail.
        gc.collect()
        report, converged = asyncio.run(_tcp_run(batch))
        assert converged, "cluster failed to converge after the load"
        assert report.failures == 0
        results["batch" if batch else "fast"] = report
    over_prior = results["batch"].ops_per_sec / PRIOR_E13_TCP_OPS
    batch_over_fast = (
        results["batch"].ops_per_sec / max(results["fast"].ops_per_sec, 1e-9)
    )
    print_table(
        f"E14c: closed-loop TCP throughput, n=4, 16 clients x {NET_OPS} ops",
        ["core", "ops/s", "p50 ms", "p99 ms", "B/op sent", "vs prior E13"],
        [
            (
                label,
                f"{report.ops_per_sec:,.0f}",
                f"{report.latency_p50 * 1e3:.2f}",
                f"{report.latency_p99 * 1e3:.2f}",
                f"{report.bytes_per_op:,.0f}",
                f"{report.ops_per_sec / PRIOR_E13_TCP_OPS:.1f}x",
            )
            for label, report in results.items()
        ],
    )
    if TIMING_ASSERTS:
        assert over_prior >= MIN_NET_OVER_PRIOR_E13, (
            f"net hot path sustained only {results['batch'].ops_per_sec:.0f} ops/s "
            f"= {over_prior:.2f}x the prior E13c number "
            f"(need >= {MIN_NET_OVER_PRIOR_E13}x of {PRIOR_E13_TCP_OPS:.0f})"
        )
    _E14C_METRICS.update({
        "tcp_ops_per_sec_batch": results["batch"].ops_per_sec,
        "tcp_ops_per_sec_fast": results["fast"].ops_per_sec,
        "net_ops_over_prior_e13": over_prior,
        "batch_over_fast_tcp": batch_over_fast,
        "tcp_p99_ms_batch": results["batch"].latency_p99 * 1e3,
        "tcp_bytes_per_op_batch": results["batch"].bytes_per_op,
    })
    emit_bench_json("E14", merged_metrics())
