"""E13 — bytes on the wire: the binary codec measured, not estimated.

Every payload claim before this experiment (E8 delta/full, E11 advert
flatness) counted *op-refs* via ``size_estimate()``.  E13 re-states them in
**measured bytes**: the :class:`~repro.net.wire.WireCluster` twin pushes
every message of a seeded execution through :mod:`repro.net.codec` and
meters the frames, so the numbers below are exactly what would cross a
socket — and, with ``json_baseline=True``, what the same messages would
cost under a plain tagged-JSON encoding.

Three parts:

* **E13a** — eager full-state vs delta vs advert/pull gossip at n=4 and
  n=8 replicas under the identical seeded load: bytes per message kind,
  binary-vs-JSON ratio (the codec must stay ≥3× smaller), and the
  execution unchanged across modes.
* **E13b** — steady-state gossip *message size in bytes* vs history
  length: eager checkpoint shipping grows with history, advert stays flat
  (the byte-level restatement of E11).
* **E13c** — sustained closed-loop throughput over real TCP loopback
  sockets (n=4, 16 concurrent clients) on the base vs the raw-speed
  replica core, with convergence checked after the run.  Wall-clock
  throughput asserts are skipped when ``E13_TIMING_ASSERTS=0`` (CI
  machines aren't calibrated); the byte metrics are asserted everywhere.

Environment knobs: ``E13_SIM_OPS`` (E13a ops, default 400), ``E13_NET_OPS``
(E13c ops per client, default 200), ``E13_TIMING_ASSERTS`` (default on).
"""

import asyncio
import gc
import os

from repro.algorithm.checkpoint import CompactionPolicy
from repro.datatypes import CounterType
from repro.net.codec import encode_message
from repro.net.driver import LoadSpec, run_load
from repro.net.runtime import NetCluster, NetParams
from repro.net.wire import WireCluster
from repro.sim.cluster import SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, print_table

SIM_OPS = int(os.environ.get("E13_SIM_OPS", "400"))
NET_OPS = int(os.environ.get("E13_NET_OPS", "200"))
TIMING_ASSERTS = os.environ.get("E13_TIMING_ASSERTS", "1") != "0"
CLIENTS = [f"c{i}" for i in range(4)]
#: The acceptance bar: binary frames at most 1/3 the JSON bytes (≥3×).
MAX_BINARY_OVER_JSON = 1.0 / 3.0

MODES = ("full", "delta", "advert")


def mode_params(mode: str) -> SimulationParams:
    base = dict(df=1.0, dg=1.0, gossip_period=2.0, batch_gossip=True,
                incremental_replay=True)
    if mode == "full":
        return SimulationParams(**base)
    if mode == "delta":
        return SimulationParams(delta_gossip=True, full_state_interval=8, **base)
    return SimulationParams(
        delta_gossip=True, full_state_interval=8,
        compaction=CompactionPolicy(), compaction_interval=8.0,
        advert_gossip=True, **base,
    )


def run_mode(mode: str, num_replicas: int, total_ops: int = SIM_OPS, seed: int = 3):
    cluster = WireCluster(CounterType(), num_replicas, CLIENTS,
                          params=mode_params(mode), seed=seed, json_baseline=True)
    spec = WorkloadSpec(operations_per_client=total_ops // len(CLIENTS),
                        mean_interarrival=0.5, strict_fraction=0.05)
    run_workload(cluster, spec, seed=seed + 1)
    cluster.run_until_idle()
    stats = cluster.wire_stats
    completed = max(len(cluster.responded), 1)
    return {
        "responded": dict(cluster.responded),
        "total_bytes": stats.total_bytes,
        "total_json_bytes": stats.total_json_bytes,
        "gossip_bytes": stats.bytes_for("gossip", "pull", "transfer"),
        "bytes_by_kind": dict(stats.bytes_by_kind),
        "bytes_per_op": stats.total_bytes / completed,
        "binary_over_json": stats.total_bytes / max(stats.total_json_bytes, 1),
    }


def test_e13a_binary_codec_beats_json_and_delta_beats_full():
    outcomes = {}
    rows = []
    for n in (4, 8):
        for mode in MODES:
            outcome = run_mode(mode, n)
            outcomes[(n, mode)] = outcome
            rows.append((
                n, mode,
                f"{outcome['total_bytes']:,}",
                f"{outcome['gossip_bytes']:,}",
                f"{outcome['bytes_per_op']:.0f}",
                f"{outcome['binary_over_json']:.3f}",
            ))
    print_table(
        f"E13a: measured wire bytes by gossip mode ({SIM_OPS} ops, identical load)",
        ["replicas", "mode", "total B", "gossip-plane B", "B/op", "binary/json"],
        rows,
    )

    for n in (4, 8):
        # The wire format changes; the execution must not.
        assert outcomes[(n, "full")]["responded"] == outcomes[(n, "delta")]["responded"]
        assert outcomes[(n, "full")]["responded"] == outcomes[(n, "advert")]["responded"]
        for mode in MODES:
            ratio = outcomes[(n, mode)]["binary_over_json"]
            assert ratio <= MAX_BINARY_OVER_JSON, (
                f"binary codec only {1/ratio:.2f}x smaller than JSON "
                f"(n={n}, {mode}; need >= 3x)"
            )
        # Delta gossip ships fewer *bytes* than eager full state, not just
        # fewer op-refs — and the advert/pull plane stays below full too.
        assert (outcomes[(n, "delta")]["gossip_bytes"]
                < outcomes[(n, "full")]["gossip_bytes"])
        assert (outcomes[(n, "advert")]["gossip_bytes"]
                < outcomes[(n, "full")]["gossip_bytes"])

    _E13A_CACHE.update(outcomes)
    emit_bench_json("E13", e13a_metrics(outcomes))


def e13a_metrics(outcomes):
    metrics = {
        "sim_ops": SIM_OPS,
        "binary_over_json": {
            f"{mode}_n{n}": outcomes[(n, mode)]["binary_over_json"]
            for (n, mode) in outcomes
        },
        "bytes_per_op": {
            f"{mode}_n{n}": outcomes[(n, mode)]["bytes_per_op"]
            for (n, mode) in outcomes
        },
        "delta_over_full_gossip_bytes_n8": (
            outcomes[(8, "delta")]["gossip_bytes"]
            / outcomes[(8, "full")]["gossip_bytes"]
        ),
        "advert_over_full_gossip_bytes_n8": (
            outcomes[(8, "advert")]["gossip_bytes"]
            / outcomes[(8, "full")]["gossip_bytes"]
        ),
    }
    # E13b/E13c fill in their own keys on top (same BENCH file, see below).
    metrics.update(_E13B_METRICS)
    metrics.update(_E13C_METRICS)
    return metrics


#: Cross-test metric accumulators: pytest runs the three parts in file
#: order, and the LAST emit wins, so each part re-emits the merged dict.
_E13B_METRICS = {}
_E13C_METRICS = {}


def steady_gossip_bytes(total_ops: int, advert: bool, seed: int = 5) -> int:
    """Encoded size of a steady-state full-state gossip message after the
    history has quiesced and compacted (the E11 measurement, in bytes)."""
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0, batch_gossip=True,
        incremental_replay=True,
        compaction=CompactionPolicy(min_batch=16, value_retention=None),
        compaction_interval=8.0, advert_gossip=advert,
    )
    cluster = WireCluster(CounterType(), 3, CLIENTS, params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=total_ops // len(CLIENTS),
                        mean_interarrival=0.25, strict_fraction=0.05)
    run_workload(cluster, spec, seed=seed + 1)
    for _ in range(6):
        for replica in cluster.replicas.values():
            replica.maybe_compact(force=True)
        cluster.run(params.gossip_period + params.dg)
    return max(
        len(encode_message(cluster.replicas[rid].make_gossip()))
        for rid in cluster.replica_ids
    )


def test_e13b_advert_keeps_steady_state_bytes_flat():
    histories = (SIM_OPS, SIM_OPS * 4)
    eager = {total: steady_gossip_bytes(total, advert=False) for total in histories}
    advert = {total: steady_gossip_bytes(total, advert=True) for total in histories}
    print_table(
        "E13b: steady-state gossip message size in bytes, eager vs advert/pull",
        ["history", "eager B", "advert B"],
        [(total, f"{eager[total]:,}", f"{advert[total]:,}") for total in histories],
    )

    small, large = histories
    eager_growth = eager[large] / eager[small]
    advert_flatness = advert[large] / advert[small]
    assert eager_growth > 2.0, f"eager bytes grew only {eager_growth:.2f}x"
    assert advert_flatness < 2.0, f"advert bytes grew {advert_flatness:.2f}x"
    assert advert[large] < eager[large] / 5

    _E13B_METRICS.update({
        "steady_bytes_eager": {str(t): eager[t] for t in histories},
        "steady_bytes_advert": {str(t): advert[t] for t in histories},
        "eager_byte_growth_ratio": eager_growth,
        "advert_byte_flatness_ratio": advert_flatness,
    })
    emit_bench_json("E13", e13a_metrics_cached())


async def _tcp_run(fast_core: bool):
    params = NetParams(gossip_period=0.5, delta_gossip=True,
                       incremental_replay=True, fast_core=fast_core)
    cluster = NetCluster(CounterType(), num_replicas=4,
                         client_ids=tuple(f"c{i}" for i in range(16)),
                         params=params, transport="tcp")
    async with cluster:
        report = await run_load(cluster, LoadSpec(operations_per_client=NET_OPS, seed=0))
        converged = await cluster.quiesce(timeout=120.0)
    return report, converged


def test_e13c_tcp_loopback_throughput():
    results = {}
    for fast in (True, False):
        # Collect the previous arm's cyclic garbage now: a gen-2 pass
        # landing mid-run stalls the event loop for hundreds of ms and
        # poisons the slower arm's latency tail.
        gc.collect()
        report, converged = asyncio.run(_tcp_run(fast))
        assert converged, "cluster failed to converge after the load"
        assert report.failures == 0
        results["fast" if fast else "base"] = report
    print_table(
        f"E13c: closed-loop TCP throughput, n=4, 16 clients x {NET_OPS} ops",
        ["core", "ops/s", "p50 ms", "p99 ms", "B/op sent"],
        [
            (
                label,
                f"{report.ops_per_sec:,.0f}",
                f"{report.latency_p50 * 1e3:.2f}",
                f"{report.latency_p99 * 1e3:.2f}",
                f"{report.bytes_per_op:,.0f}",
            )
            for label, report in results.items()
        ],
    )

    if TIMING_ASSERTS:
        assert results["fast"].ops_per_sec >= 2000, (
            f"fast core sustained only {results['fast'].ops_per_sec:.0f} ops/s "
            "over TCP loopback (need >= 2000)"
        )
        assert results["fast"].ops_per_sec > results["base"].ops_per_sec

    _E13C_METRICS.update({
        "tcp_ops_per_sec_fast": results["fast"].ops_per_sec,
        "tcp_ops_per_sec_base": results["base"].ops_per_sec,
        "tcp_fast_over_base": (
            results["fast"].ops_per_sec / max(results["base"].ops_per_sec, 1e-9)
        ),
        "tcp_bytes_per_op_fast": results["fast"].bytes_per_op,
        "tcp_p99_ms_fast": results["fast"].latency_p99 * 1e3,
    })
    emit_bench_json("E13", e13a_metrics_cached())


#: E13a's outcomes, cached so the later parts can re-emit the merged
#: metrics without re-running the sweep.
_E13A_CACHE = {}


def e13a_metrics_cached():
    if not _E13A_CACHE:
        for n in (4, 8):
            for mode in MODES:
                _E13A_CACHE[(n, mode)] = run_mode(mode, n)
    return e13a_metrics(_E13A_CACHE)
