"""E4 — recovery of the timing bounds after a faulty period (Theorem 9.4).

A replica is partitioned away from gossip for a window ``[2, 20)``.  During
the window the Theorem 9.3 bounds may be exceeded; measured from the resume
time (window end + one retransmission + one gossip period) every response is
again within its bound.
"""

from repro.analysis.bounds import TimingAssumptions, check_latency_records_against_bounds
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.faults import FaultSchedule, GossipOutage
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, print_table

PARAMS = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, retransmit_interval=2.0)
TIMING = TimingAssumptions(df=PARAMS.df, dg=PARAMS.dg, gossip_period=PARAMS.gossip_period)
OUTAGE_START, OUTAGE_END = 2.0, 20.0


def run_with_outage(seed: int = 0):
    cluster = SimulatedCluster(
        CounterType(), num_replicas=3,
        client_ids=["c0", "c1"], params=PARAMS, seed=seed,
    )
    faults = FaultSchedule().add(GossipOutage("r1", start=OUTAGE_START, end=OUTAGE_END))
    faults.install(cluster)
    spec = WorkloadSpec(operations_per_client=12, mean_interarrival=1.0,
                        strict_fraction=0.4, prev_policy="last_own")
    result = run_workload(cluster, spec, seed=seed + 11, drain_time=400.0)
    return cluster, result, faults


def test_e4_bounds_recover_after_the_outage(benchmark):
    cluster, result, faults = run_with_outage()
    assert cluster.outstanding_operations() == 0

    violations_from_request = check_latency_records_against_bounds(
        result.metrics.records, TIMING
    )
    resume = faults.last_fault_time() + PARAMS.retransmit_interval + PARAMS.gossip_period
    violations_from_resume = check_latency_records_against_bounds(
        result.metrics.records, TIMING, resume_time=resume
    )

    print_table(
        "E4: Theorem 9.4 — gossip outage on r1 during [2, 20)",
        ["measurement", "value"],
        [
            ("operations completed", result.metrics.completed),
            ("bound violations measured from request time", len(violations_from_request)),
            (f"bound violations measured from resume t={resume:.0f}", len(violations_from_resume)),
            ("max latency overall", f"{result.metrics.latency_summary().maximum:.1f}"),
        ],
    )

    # The outage makes some strict operations late relative to their request...
    assert len(violations_from_request) > 0
    # ...but every response is within delta(x) of the resume time.
    assert violations_from_resume == []

    emit_bench_json("E4", {
        "completed": result.metrics.completed,
        "violations_from_request": len(violations_from_request),
        "violations_from_resume": len(violations_from_resume),
        "max_latency": result.metrics.latency_summary().maximum,
        "throughput": result.throughput,
    })

    benchmark(run_with_outage, 1)
