"""E11 — bounded steady-state gossip payloads via advert/pull checkpoints.

PR 3 bounded replica *memory* with stability-driven checkpoints, but eager
gossip still ships the checkpoint body — base state, interval summary and
the retained-value ledger — inside every full-state message, so the
steady-state wire payload grows with the history (linearly under unbounded
``value_retention``, and by a constant-but-large ledger under a finite one).
Advert/pull gossip replaces the body with a compact advert (frontier label,
digest, per-client id intervals): a caught-up peer learns everything it
needs from the advert alone, and only a genuinely behind peer pulls the
body, as chunked transfers, on demand.

The table runs the same seeded workload at growing history lengths under
both modes and reports the size of a steady-state full-state gossip message
after quiescence: eager grows with the history, advert/pull stays flat at
the unstable-suffix + advert size — while responses remain identical and,
in a fault-free run, the pull/transfer plane stays completely silent.

Environment knobs: ``E11_HISTORIES`` (comma-separated op counts, default
``1000,4000,16000``).
"""

import os

from repro.algorithm.checkpoint import CompactionPolicy
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, print_table

NUM_REPLICAS = 3
CLIENTS = [f"c{i}" for i in range(4)]
HISTORIES = [
    int(size)
    for size in os.environ.get("E11_HISTORIES", "1000,4000,16000").split(",")
]
#: Unbounded retention makes the eager body's growth exactly linear in the
#: history — the honest worst case the advert bounds away.  (A finite
#: retention would cap the growth at a constant ledger of that size, still
#: shipped in every message; the advert costs O(clients) regardless.)
POLICY = CompactionPolicy(min_batch=16, value_retention=None)


def run_history(total_ops: int, advert: bool, seed: int = 1):
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0,
        incremental_replay=True, batch_gossip=True,
        compaction=POLICY, compaction_interval=8.0,
        advert_gossip=advert,
    )
    cluster = SimulatedCluster(CounterType(), NUM_REPLICAS, CLIENTS,
                               params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=total_ops // len(CLIENTS),
                        mean_interarrival=0.25, strict_fraction=0.05)
    run_workload(cluster, spec, seed=seed + 1)
    # Quiesce: let stability spread and fold everything foldable, so the
    # measured message is the steady-state one (suffix + checkpoint field).
    for _ in range(6):
        for replica in cluster.replicas.values():
            replica.maybe_compact(force=True)
        cluster.run(params.gossip_period + params.dg)
    steady_sizes = [
        cluster.replicas[rid].make_gossip().size_estimate()
        for rid in cluster.replica_ids
    ]
    counters = cluster.network.counters
    return {
        "responded": dict(cluster.responded),
        "steady_payload": max(steady_sizes),
        "compacted": len(cluster.compacted_prefix),
        "payload_per_gossip": counters.gossip_payload / max(counters.gossip, 1),
        "pulls": counters.pull,
        "transfers": counters.transfer,
    }


def test_e11_advert_pull_keeps_steady_state_payload_flat():
    outcomes = {}
    rows = []
    for total in HISTORIES:
        eager = run_history(total, advert=False)
        advert = run_history(total, advert=True)
        outcomes[total] = (eager, advert)
        rows.append((
            total,
            eager["steady_payload"],
            advert["steady_payload"],
            f"{eager['payload_per_gossip']:.1f}",
            f"{advert['payload_per_gossip']:.1f}",
            advert["pulls"],
        ))
    print_table(
        "E11: steady-state full-state payload, eager vs advert/pull "
        f"({NUM_REPLICAS} replicas, identical seeded load)",
        ["history", "eager payload", "advert payload",
         "eager per gossip", "advert per gossip", "pulls"],
        rows,
    )

    smallest, largest = HISTORIES[0], HISTORIES[-1]
    for total, (eager, advert) in outcomes.items():
        # Advert/pull changes the wire format, not the execution.
        assert eager["responded"] == advert["responded"]
        assert advert["compacted"] > 0
        # Fault-free steady state: nobody ever fell behind, nothing pulled.
        assert advert["pulls"] == 0
        assert advert["transfers"] == 0

    # Eager full-state payload grows with the history (the value ledger
    # rides along)...
    eager_growth = (outcomes[largest][0]["steady_payload"]
                    / outcomes[smallest][0]["steady_payload"])
    assert eager_growth > 3.0, f"eager payload grew only {eager_growth:.2f}x"
    # ...while the advert payload is flat in the history length...
    advert_flatness = (outcomes[largest][1]["steady_payload"]
                       / outcomes[smallest][1]["steady_payload"])
    assert advert_flatness < 2.0, f"advert payload grew {advert_flatness:.2f}x"
    # ...and decisively smaller at scale.
    assert (outcomes[largest][1]["steady_payload"]
            < outcomes[largest][0]["steady_payload"] / 5)

    emit_bench_json("E11", {
        "histories": HISTORIES,
        "steady_payload_eager": {
            total: outcomes[total][0]["steady_payload"] for total in HISTORIES
        },
        "steady_payload_advert": {
            total: outcomes[total][1]["steady_payload"] for total in HISTORIES
        },
        "payload_per_gossip_eager": {
            total: outcomes[total][0]["payload_per_gossip"] for total in HISTORIES
        },
        "payload_per_gossip_advert": {
            total: outcomes[total][1]["payload_per_gossip"] for total in HISTORIES
        },
        "eager_growth_ratio": eager_growth,
        "advert_flatness_ratio": advert_flatness,
        "advert_over_eager_at_largest": (
            outcomes[largest][1]["steady_payload"]
            / outcomes[largest][0]["steady_payload"]
        ),
    })
