#!/usr/bin/env python3
"""Benchmark regression gate.

Compares freshly produced ``BENCH_*.json`` files (benchmark artifacts, see
``conftest.emit_bench_json``) against the checked-in tolerance bands in
``benchmarks/baselines/BASELINE_*.json`` and exits non-zero on regression.
Pure stdlib, so CI can run it without installing the package.

Usage::

    python benchmarks/check_regression.py --bench-dir <dir-with-BENCH-json>
    python benchmarks/check_regression.py --bench-dir benchmarks --update

Baseline schema — one file per experiment::

    {
      "experiment": "E11",
      "checks": [
        {"name": "...", "path": "steady_payload_advert.16000", "max": 50},
        {"name": "...", "path": "gossip_payload.4000",
         "baseline": 392198, "tolerance": 0.3, "direction": "upper"}
      ]
    }

``path`` is a dot-separated lookup into the experiment's ``metrics`` object
(JSON object keys are strings).  Two check kinds:

* hard bounds — ``max`` and/or ``min``: the metric must stay within them
  regardless of history (used for promises like "peak tracked ops stays
  below the suffix window" or "advert payload is O(clients)");
* baseline bands — ``baseline`` + ``tolerance`` (relative) + ``direction``
  (``"upper"``, ``"lower"`` or ``"both"``): the metric must stay within
  ``baseline * (1 ± tolerance)`` on the guarded side(s).

Intentional baseline bumps: re-run the benchmarks locally, then run this
script with ``--update`` (rewrites the ``baseline`` values in place from
the fresh BENCH files; hard ``max``/``min`` bounds are never auto-bumped —
edit those deliberately) and commit the changed baseline files in the same
PR.  The CI gate then passes because it compares against the new bands.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def lookup(metrics, path):
    node = metrics
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def evaluate(check, value):
    """Returns a list of failure strings (empty = pass)."""
    failures = []
    name = check.get("name", check["path"])
    if "max" in check and value > check["max"]:
        failures.append(f"{name}: {value} exceeds hard max {check['max']}")
    if "min" in check and value < check["min"]:
        failures.append(f"{name}: {value} below hard min {check['min']}")
    if "baseline" in check:
        baseline = check["baseline"]
        tolerance = check.get("tolerance", 0.25)
        direction = check.get("direction", "upper")
        upper = baseline * (1 + tolerance)
        lower = baseline * (1 - tolerance)
        if direction in ("upper", "both") and value > upper:
            failures.append(
                f"{name}: {value} exceeds baseline {baseline} "
                f"(+{tolerance:.0%} band = {upper:.4g})"
            )
        if direction in ("lower", "both") and value < lower:
            failures.append(
                f"{name}: {value} below baseline {baseline} "
                f"(-{tolerance:.0%} band = {lower:.4g})"
            )
    return failures


def load_metrics(bench_path: Path):
    """The ``metrics`` object of a BENCH artifact, or an error string —
    a corrupt or truncated artifact is a gate failure, not a traceback."""
    try:
        doc = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return None, f"unreadable artifact {bench_path.name}: {error}"
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    if not isinstance(metrics, dict):
        return None, f"artifact {bench_path.name} has no 'metrics' object"
    return metrics, None


def run(bench_dir: Path, update: bool) -> int:
    baseline_files = sorted(BASELINE_DIR.glob("BASELINE_*.json"))
    if not baseline_files:
        print(f"no baseline files under {BASELINE_DIR}", file=sys.stderr)
        return 2
    failures, checked = [], 0
    covered = set()
    for baseline_path in baseline_files:
        baseline = json.loads(baseline_path.read_text())
        experiment = baseline["experiment"]
        covered.add(experiment)
        bench_path = bench_dir / f"BENCH_{experiment}.json"
        if not bench_path.exists():
            failures.append(f"{experiment}: missing artifact {bench_path}")
            continue
        metrics, error = load_metrics(bench_path)
        if metrics is None:
            failures.append(f"{experiment}: {error}")
            continue
        dirty = False
        for check in baseline["checks"]:
            value = lookup(metrics, check["path"])
            if value is None:
                failures.append(
                    f"{experiment}: metric path {check['path']!r} absent from {bench_path.name}"
                )
                continue
            if update and "baseline" in check:
                check["baseline"] = value
                dirty = True
                continue
            checked += 1
            verdicts = evaluate(check, value)
            for verdict in verdicts:
                failures.append(f"{experiment}: {verdict}")
            status = "FAIL" if verdicts else "ok"
            print(f"  [{status}] {experiment} {check.get('name', check['path'])}: {value}")
        if update and dirty:
            baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
            print(f"updated {baseline_path}")
    # Every produced artifact must be gated: a BENCH file with no matching
    # baseline means an experiment silently escaped the regression gate
    # (usually a new benchmark landed without its BASELINE_*.json).
    unmatched = sorted(
        path.name
        for path in bench_dir.glob("BENCH_E*.json")
        if path.name[len("BENCH_"):-len(".json")] not in covered
    )
    if unmatched:
        known = ", ".join(sorted(covered))
        for name in unmatched:
            failures.append(
                f"{name}: no matching baseline under {BASELINE_DIR} "
                f"(baselines exist for: {known}) - add a "
                f"BASELINE_{name[len('BENCH_'):-len('.json')]}.json with the "
                "experiment's tolerance bands"
            )
    if update:
        if failures:
            # Missing artifacts / dangling metric paths mean some baselines
            # were NOT refreshed — committing them now would ship stale
            # bands while looking like a successful bump.
            print("\nbaseline update INCOMPLETE:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("baselines rewritten from fresh BENCH files; review and commit them")
        return 0
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(
            "\nIf the change is intentional, refresh the bands with\n"
            "  python benchmarks/check_regression.py --bench-dir benchmarks --update\n"
            "and commit the updated benchmarks/baselines/*.json (hard max/min\n"
            "bounds must be edited by hand).",
            file=sys.stderr,
        )
        return 1
    print(f"\nbenchmark regression gate passed ({checked} checks)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-dir", type=Path, default=Path(__file__).resolve().parent,
                        help="directory holding the fresh BENCH_*.json artifacts")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline values from the fresh artifacts")
    args = parser.parse_args()
    return run(args.bench_dir, args.update)


if __name__ == "__main__":
    sys.exit(main())
