#!/usr/bin/env python3
"""Profile the net-runtime driver hot path and dump the cProfile top-N.

Runs the E13c/E14c-style closed-loop TCP load under ``cProfile`` on the
fast and the batch replica cores and prints the top functions by
cumulative time — the socket-path counterpart of
``profile_hotpath.py``'s simulator profile, so every CI run also leaves
a browsable record of where the *network* wall clock went (codec encode/
decode, frame handling, splice passes) long before a regression trips a
timing band.

Usage::

    PYTHONPATH=src python benchmarks/profile_net_driver.py [--ops N] [--top N]
    PYTHONPATH=src python benchmarks/profile_net_driver.py --out profile.txt
"""

from __future__ import annotations

import argparse
import asyncio
import cProfile
import gc
import io
import pstats
import sys

from repro.datatypes import CounterType
from repro.net.driver import LoadSpec, run_load
from repro.net.runtime import NetCluster, NetParams


async def _drive(batch_replay: bool, ops_per_client: int):
    params = NetParams(gossip_period=0.5, delta_gossip=True,
                       incremental_replay=True, fast_core=True,
                       batch_replay=batch_replay)
    cluster = NetCluster(CounterType(), num_replicas=4,
                         client_ids=tuple(f"c{i}" for i in range(16)),
                         params=params, transport="tcp")
    async with cluster:
        report = await run_load(cluster, LoadSpec(operations_per_client=ops_per_client,
                                                  seed=0))
        await cluster.quiesce(timeout=60.0)
    return report


def profile_run(ops_per_client: int, batch_replay: bool, top: int) -> str:
    gc.collect()  # keep the previous arm's garbage out of this profile
    profiler = cProfile.Profile()
    profiler.enable()
    report = asyncio.run(_drive(batch_replay, ops_per_client))
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    core = "batch" if batch_replay else "fast"
    header = (
        f"=== {core} core, 16 clients x {ops_per_client} ops over TCP loopback "
        f"({report.ops_per_sec:,.0f} ops/s), top {top} by cumulative time ===\n"
    )
    return header + buffer.getvalue()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=100,
                        help="operations per client in the profiled load")
    parser.add_argument("--top", type=int, default=30,
                        help="number of entries to print per core")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    args = parser.parse_args()
    report = "\n".join(
        profile_run(args.ops, batch, args.top) for batch in (False, True)
    )
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
