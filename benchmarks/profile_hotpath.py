#!/usr/bin/env python3
"""Profile the replay/ordering hot path and dump the cProfile top-N.

Runs the E10-style compacted workload (the PR-CI slice of the long-run
configuration) under ``cProfile`` on both replica cores and prints the top
functions by cumulative time, so every CI run leaves a browsable record of
where the wall clock went — regressions show up as a new name at the top of
the table long before they trip a timing band.

Usage::

    PYTHONPATH=src python benchmarks/profile_hotpath.py [--ops N] [--top N]
    PYTHONPATH=src python benchmarks/profile_hotpath.py --out profile.txt
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys

from repro.algorithm.checkpoint import CompactionPolicy
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

CLIENTS = [f"c{i}" for i in range(4)]


def profile_run(total_ops: int, fast: bool, top: int) -> str:
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0,
        delta_gossip=True, incremental_replay=True, batch_gossip=True,
        fast_core=fast,
        compaction=CompactionPolicy(min_batch=32, value_retention=256),
        compaction_interval=16.0,
    )
    cluster = SimulatedCluster(CounterType(), 3, CLIENTS, params=params, seed=1)
    spec = WorkloadSpec(operations_per_client=total_ops // len(CLIENTS),
                        mean_interarrival=0.25, strict_fraction=0.05)
    profiler = cProfile.Profile()
    profiler.enable()
    run_workload(cluster, spec, seed=2)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    core = "fast" if fast else "base"
    header = f"=== {core} core, {total_ops} ops, top {top} by cumulative time ===\n"
    return header + buffer.getvalue()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=4000,
                        help="total operations in the profiled workload")
    parser.add_argument("--top", type=int, default=30,
                        help="number of entries to print per core")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    args = parser.parse_args()
    report = "\n".join(
        profile_run(args.ops, fast, args.top) for fast in (False, True)
    )
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
