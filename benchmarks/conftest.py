"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's quantitative results (see
docs/benchmarks.md for the experiment index and how to read the output).
Each module prints the table/series the paper reports and also exposes a
``pytest-benchmark`` measurement of one representative configuration, so

    cd benchmarks && PYTHONPATH=../src python -m pytest -s --benchmark-only

produces both the reproduction tables (on stdout) and wall-clock timings
(the local ``pytest.ini`` widens collection to the ``bench_*.py`` modules).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a small fixed-width table to stdout (captured with ``-s``)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n--- {title} ---")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    print()


def monotonically_nondecreasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when the sequence never drops by more than *slack* (relative)."""
    for earlier, later in zip(values, values[1:]):
        if later < earlier * (1.0 - slack):
            return False
    return True
