"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's quantitative results (see
docs/benchmarks.md for the experiment index and how to read the output).
Each module prints the table/series the paper reports and also exposes a
``pytest-benchmark`` measurement of one representative configuration, so

    cd benchmarks && PYTHONPATH=../src python -m pytest -s --benchmark-only

produces both the reproduction tables (on stdout) and wall-clock timings
(the local ``pytest.ini`` widens collection to the ``bench_*.py`` modules).

Besides the stdout tables, every experiment writes a machine-readable
``BENCH_E<N>.json`` next to this file (override the directory with
``BENCH_OUTPUT_DIR``) via :func:`emit_bench_json`, so the perf trajectory —
ops/s, message counts, payload sizes, peak replica state — can be tracked
across commits and uploaded as CI artifacts.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Sequence

BENCH_OUTPUT_DIR = Path(os.environ.get("BENCH_OUTPUT_DIR", Path(__file__).resolve().parent))


def _jsonable(value: Any) -> Any:
    """Coerce metric values into JSON-safe primitives (keys become strings,
    NaN becomes null, unknown objects become their repr)."""
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, float):
        return None if math.isnan(value) else value
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    return repr(value)


def emit_bench_json(experiment: str, metrics: Dict[str, Any]) -> Path:
    """Write one experiment's headline metrics to ``BENCH_<EXPERIMENT>.json``.

    The schema is deliberately flat and stable: ``{"experiment": ...,
    "metrics": {...}}``.  Returns the path written.
    """
    tag = experiment.upper()
    BENCH_OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = BENCH_OUTPUT_DIR / f"BENCH_{tag}.json"
    payload = {"experiment": tag, "metrics": _jsonable(metrics)}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a small fixed-width table to stdout (captured with ``-s``)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n--- {title} ---")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    print()


def monotonically_nondecreasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when the sequence never drops by more than *slack* (relative)."""
    for earlier, later in zip(values, values[1:]):
        if later < earlier * (1.0 - slack):
            return False
    return True
