"""E5 — stabilization latency versus the gossip period.

The analysis in Sections 6 and 9 predicts that the time for an operation to
become stable (and hence the latency of strict operations) is governed by the
gossip round time ``g + dg``: roughly one round to reach every replica, one
to be observed done everywhere, one for that knowledge to spread.  Sweeping
``g`` shows strict latency and stabilization time growing with ``g`` while
non-strict latency stays flat at ``2*df``.
"""

from repro.analysis.bounds import TimingAssumptions, stabilization_time_bound
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload

from conftest import emit_bench_json, monotonically_nondecreasing, print_table


def run_gossip_period(gossip_period: float, seed: int = 0):
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=gossip_period,
                              track_stabilization=True)
    cluster = SimulatedCluster(CounterType(), num_replicas=3,
                               client_ids=["c0", "c1"], params=params, seed=seed)
    spec = WorkloadSpec(operations_per_client=15, mean_interarrival=2.0,
                        strict_fraction=0.5)
    result = run_workload(cluster, spec, seed=seed + 5,
                          drain_time=20 * (gossip_period + params.dg))
    strict = result.latency_summary("strict").mean
    nonstrict = result.latency_summary("nonstrict_no_prev").mean
    stabilization = result.metrics.stabilization_summary().mean
    return strict, nonstrict, stabilization


def test_e5_strict_latency_tracks_the_gossip_period(benchmark):
    periods = [1.0, 2.0, 4.0, 8.0]
    rows = []
    strict_series, nonstrict_series, stab_series = [], [], []
    for period in periods:
        strict, nonstrict, stabilization = run_gossip_period(period)
        timing = TimingAssumptions(df=1.0, dg=1.0, gossip_period=period)
        rows.append((
            f"{period:.0f}",
            f"{nonstrict:.2f}",
            f"{strict:.2f}",
            f"{stabilization:.2f}",
            f"{stabilization_time_bound(timing):.1f}",
        ))
        strict_series.append(strict)
        nonstrict_series.append(nonstrict)
        stab_series.append(stabilization)

    print_table(
        "E5: latency and stabilization time vs gossip period g (df=dg=1)",
        ["g", "non-strict mean", "strict mean", "stabilization mean", "stabilization bound"],
        rows,
    )

    # Strict latency and stabilization grow with g; non-strict stays ~2*df.
    assert monotonically_nondecreasing(strict_series, slack=0.05)
    assert monotonically_nondecreasing(stab_series, slack=0.05)
    assert strict_series[-1] > 2 * strict_series[0] * 0.9
    assert max(nonstrict_series) <= 2.0 + 1e-9

    emit_bench_json("E5", {
        "gossip_periods": periods,
        "strict_mean_latency": strict_series,
        "nonstrict_mean_latency": nonstrict_series,
        "stabilization_mean": stab_series,
    })

    benchmark(run_gossip_period, 2.0, 1)
